// Sim-domain purity analysis — the static counterpart of the determinism
// tests. The SimMachine event loop replays identically given a seed; that
// only holds if nothing on a sim-reachable path consults state outside the
// simulation: wall clocks, ambient randomness, or hash-ordered iteration
// that feeds ordered output (message emission, trace events, worklists).
//
// Domain classification: every function is sim-reachable except those whose
// file belongs to a wall-clock domain by design — the threaded machine
// (dmcs/thread_machine*), the live service harness (service/), portable
// support utilities (support/, bench_support/) — plus the forward
// call-graph closure from the SimMachine files themselves, which pulls
// sim-only helpers back in even if they live elsewhere. Handlers shared by
// both machines (mol, prema, ilb) are in the domain: they must be pure to
// keep the simulator honest.
//
//  sim-purity-wallclock  reads steady_clock / system_clock /
//                        high_resolution_clock on a sim-reachable path.
//  sim-purity-random     uses std::random_device, rand() or srand() —
//                        randomness not owned by the seeded simulation RNG.
//  sim-purity-unordered  range-for over an unordered_map/unordered_set
//                        field: hash-order iteration feeding whatever the
//                        loop body emits.
//
// `// analyze:allow(<rule>)` on the offending line (or the line above)
// acknowledges a reviewed exception, e.g. a loop whose results are sorted
// before use.

#include <optional>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Files that are wall-clock / live-thread domains by design.
bool excluded_file(std::string_view rel) {
  return rel.find("thread_machine") != std::string_view::npos ||
         starts_with(rel, "support/") || starts_with(rel, "bench_support/") ||
         starts_with(rel, "service/");
}

/// Declared class of `recv` at `use`: an unambiguous member/field type, or a
/// preceding local/parameter declaration `Cls[&*] recv`.
std::string receiver_class(const Index& idx, const SourceFile& f,
                           const FunctionDef& fn, const std::string& recv,
                           std::size_t use) {
  if (const auto it = idx.member_types.find(recv); it != idx.member_types.end()) {
    return it->second;
  }
  const std::string_view code = f.code;
  std::size_t from = fn.name_pos;
  while (true) {
    const std::size_t pos = find_ident(code, recv, from, false, false);
    if (pos == std::string_view::npos || pos >= use) break;
    from = pos + 1;
    std::size_t r = pos;
    while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1]))) --r;
    while (r > 0 && (code[r - 1] == '&' || code[r - 1] == '*')) --r;
    while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1]))) --r;
    std::size_t tb = r;
    while (tb > 0 && ident_char(code[tb - 1])) --tb;
    const std::string word(code.substr(tb, r - tb));
    if (idx.class_names.count(word) != 0) return word;
  }
  return "";
}

/// Parse the range expression of `for (... : EXPR)` into a member-access
/// chain of plain identifiers; empty when EXPR is anything more exotic
/// (a call, arithmetic, an initializer list).
std::vector<std::string> range_chain(std::string_view expr) {
  std::vector<std::string> chain;
  std::size_t p = skip_ws(expr, 0);
  while (p < expr.size() && (expr[p] == '*' || expr[p] == '&')) {
    p = skip_ws(expr, p + 1);
  }
  while (true) {
    std::size_t e = p;
    while (e < expr.size() && ident_char(expr[e])) ++e;
    if (e == p) return {};
    chain.emplace_back(expr.substr(p, e - p));
    p = skip_ws(expr, e);
    if (p >= expr.size()) return chain;
    if (expr[p] == '.') {
      p = skip_ws(expr, p + 1);
    } else if (expr[p] == '-' && p + 1 < expr.size() && expr[p + 1] == '>') {
      p = skip_ws(expr, p + 2);
    } else {
      return {};  // call parens, indexing, arithmetic — give up
    }
  }
}

}  // namespace

void pass_sim_purity(const Tree& tree, const Options& opts, Findings& out) {
  (void)opts;
  std::optional<Index> local;
  const Index& idx =
      opts.index != nullptr ? *opts.index : local.emplace(build_index(tree));

  // Sim domain: everything outside the excluded wall-clock files, plus the
  // forward closure from the SimMachine files over resolved call edges.
  std::vector<char> in_domain(idx.funcs.size(), 0);
  for (std::size_t fi = 0; fi < idx.funcs.size(); ++fi) {
    const SourceFile& f =
        idx.tree->files[static_cast<std::size_t>(idx.funcs[fi].file)];
    if (f.rel.find("sim_machine") != std::string::npos) {
      in_domain[fi] = 1;
    } else if (!excluded_file(f.rel)) {
      in_domain[fi] = 1;
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const CallSite& call : idx.calls) {
      if (call.callee < 0) continue;
      const std::size_t callee = static_cast<std::size_t>(call.callee);
      const SourceFile& cf =
          idx.tree->files[static_cast<std::size_t>(idx.funcs[callee].file)];
      // The closure never drags excluded files back in: a sim function may
      // legitimately share a *caller* with threaded code, but a function
      // living in a wall-clock file stays out of the domain.
      if (excluded_file(cf.rel)) continue;
      if (in_domain[static_cast<std::size_t>(call.caller)] != 0 &&
          in_domain[callee] == 0) {
        in_domain[callee] = 1;
        changed = true;
      }
    }
  }

  std::set<std::string> reported;
  auto report = [&](const char* rule, const SourceFile& f, std::size_t pos,
                    const std::string& key, const std::string& message) {
    if (allow_comment(f, pos, rule)) return;
    if (!reported.insert(std::string(rule) + "|" + key).second) return;
    out.push_back({rule, f.rel, line_of(f.code, pos), message});
  };

  for (std::size_t fi = 0; fi < idx.funcs.size(); ++fi) {
    if (in_domain[fi] == 0) continue;
    const FunctionDef& fn = idx.funcs[fi];
    const SourceFile& f = idx.tree->files[static_cast<std::size_t>(fn.file)];
    const std::string_view code = f.code;

    // -- wall clock ---------------------------------------------------------
    for (const char* clock :
         {"steady_clock", "system_clock", "high_resolution_clock"}) {
      std::size_t from = fn.body_begin;
      while (true) {
        const std::size_t pos = find_ident(code, clock, from, true, false);
        if (pos == std::string_view::npos || pos >= fn.body_end) break;
        from = pos + 1;
        report("sim-purity-wallclock", f, pos, fn.qual + "|" + clock,
               "'" + fn.qual + "' reads '" + clock +
                   "' on a sim-reachable path (simulated time must come from "
                   "the event engine)");
      }
    }

    // -- unowned randomness -------------------------------------------------
    {
      const std::size_t pos =
          find_ident(code, "random_device", fn.body_begin, true, false);
      if (pos != std::string_view::npos && pos < fn.body_end) {
        report("sim-purity-random", f, pos, fn.qual + "|random_device",
               "'" + fn.qual +
                   "' constructs std::random_device on a sim-reachable path "
                   "(randomness must come from the seeded run RNG)");
      }
    }
    for (const char* call : {"rand", "srand"}) {
      const std::size_t pos =
          find_ident(code, call, fn.body_begin, true, true);
      if (pos != std::string_view::npos && pos < fn.body_end) {
        report("sim-purity-random", f, pos,
               fn.qual + "|" + std::string(call),
               "'" + fn.qual + "' calls '" + call +
                   "()' on a sim-reachable path (randomness must come from "
                   "the seeded run RNG)");
      }
    }

    // -- hash-order iteration -----------------------------------------------
    std::size_t from = fn.body_begin;
    while (true) {
      const std::size_t pos = find_ident(code, "for", from, false, false);
      if (pos == std::string_view::npos || pos >= fn.body_end) break;
      from = pos + 1;
      const std::size_t open = skip_ws(code, pos + 3);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = matching_paren(code, open);
      if (close == std::string_view::npos || close > fn.body_end) continue;
      // Top-level ':' that is not part of a '::'.
      std::size_t colon = std::string_view::npos;
      int depth = 0;
      for (std::size_t p = open + 1; p < close; ++p) {
        const char c = code[p];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ':' && depth == 0 && (p == 0 || code[p - 1] != ':') &&
            (p + 1 >= code.size() || code[p + 1] != ':')) {
          colon = p;
          break;
        }
      }
      if (colon == std::string_view::npos) continue;
      const std::vector<std::string> chain =
          range_chain(code.substr(colon + 1, close - colon - 1));
      if (chain.empty()) continue;
      std::string hint;
      if (chain.size() >= 2) {
        hint = receiver_class(idx, f, fn, chain[chain.size() - 2], pos);
      } else if (const std::size_t sep = fn.qual.rfind("::");
                 sep != std::string::npos) {
        hint = fn.qual.substr(0, sep);
      }
      const FieldDecl* field = idx.find_field(hint, fn.file, chain.back());
      if (field == nullptr) continue;
      if (field->type.find("unordered_") == std::string::npos) continue;
      report("sim-purity-unordered", f, pos,
             fn.qual + "|" + field->cls + "::" + field->name,
             "'" + fn.qual + "' iterates unordered container '" + field->cls +
                 "::" + field->name +
                 "' on a sim-reachable path (hash order is not deterministic "
                 "across platforms)");
    }
  }
}

}  // namespace prema::analyze
