#pragma once

#include <set>
#include <string>

#include "analyze/passes.hpp"

/// \file report.hpp
/// Finding output: baseline suppression (CI fails only on NEW violations)
/// and SARIF 2.1.0 export for code-scanning UIs / CI artifacts.

namespace prema::analyze {

/// Parse a baseline file's text: one fingerprint per line, '#' comments and
/// blank lines ignored.
std::set<std::string> parse_baseline(std::string_view text);

/// Findings whose fingerprint is not in `baseline`, in input order.
Findings subtract_baseline(const Findings& all, const std::set<std::string>& baseline);

/// Baseline file content for `all` (sorted, one fingerprint per line) with a
/// header comment describing the workflow.
std::string render_baseline(const Findings& all);

/// SARIF 2.1.0 document for `findings`.
std::string render_sarif(const Findings& findings);

}  // namespace prema::analyze
