#include <optional>

#include "analyze/passes.hpp"

namespace prema::analyze {

const std::vector<PassInfo>& all_passes() {
  static const std::vector<PassInfo> passes = {
      {"conventions", pass_conventions, /*per_file=*/true, /*needs_index=*/false},
      {"lock-order", pass_lock_order, false, false},
      {"protocol", pass_protocol, false, false},
      {"serialization", pass_serialization, false, false},
      {"time-domain", pass_time_domain, /*per_file=*/true, false},
      {"lock-flow", pass_lock_flow, false, /*needs_index=*/true},
      {"protocol-fsm", pass_protocol_fsm, false, true},
      {"sim-purity", pass_sim_purity, false, true},
      {"atomic-discipline", pass_atomic_discipline, false, true},
      {"release-acquire", pass_release_acquire, false, true},
      {"mixed-access", pass_mixed_access, false, true},
  };
  return passes;
}

void run_all_passes(const Tree& tree, const Options& opts, Findings& out) {
  // Build the whole-program index once and share it: three of the index
  // passes would otherwise each build their own.
  Options shared = opts;
  std::optional<Index> idx;
  if (shared.index == nullptr) {
    for (const PassInfo& p : all_passes()) {
      if (p.needs_index) {
        idx.emplace(build_index(tree));
        shared.index = &*idx;
        break;
      }
    }
  }
  for (const PassInfo& p : all_passes()) p.fn(tree, shared, out);
}

}  // namespace prema::analyze
