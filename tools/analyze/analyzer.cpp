#include "analyze/passes.hpp"

namespace prema::analyze {

const std::vector<PassInfo>& all_passes() {
  static const std::vector<PassInfo> passes = {
      {"conventions", pass_conventions},
      {"lock-order", pass_lock_order},
      {"protocol", pass_protocol},
      {"serialization", pass_serialization},
      {"time-domain", pass_time_domain},
      {"lock-flow", pass_lock_flow},
      {"protocol-fsm", pass_protocol_fsm},
      {"sim-purity", pass_sim_purity},
  };
  return passes;
}

void run_all_passes(const Tree& tree, const Options& opts, Findings& out) {
  for (const PassInfo& p : all_passes()) p.fn(tree, opts, out);
}

}  // namespace prema::analyze
