#include "analyze/core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace prema::analyze {

namespace fs = std::filesystem;

std::string fingerprint(const Finding& f) {
  return f.rule + "|" + f.file + "|" + f.message;
}

std::string strip_comments_and_literals(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto blank_until = [&](std::size_t end) {
    for (; i < end && i < n; ++i) out.push_back(in[i] == '\n' ? '\n' : ' ');
  };

  while (i < n) {
    const char c = in[i];
    // Line comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      std::size_t end = in.find('\n', i);
      blank_until(end == std::string_view::npos ? n : end);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      std::size_t end = in.find("*/", i + 2);
      blank_until(end == std::string_view::npos ? n : end + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(in[i - 1])) &&
                    in[i - 1] != '_'))) {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && in[p] != '(' && delim.size() <= 16) delim.push_back(in[p++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = in.find(closer, p);
      blank_until(end == std::string_view::npos ? n : end + closer.size());
      continue;
    }
    // Ordinary string / char literal. A lone apostrophe between digits is a
    // C++14 digit separator (1'000'000), not a char literal.
    if (c == '"' ||
        (c == '\'' && !(i > 0 && std::isdigit(static_cast<unsigned char>(in[i - 1])) &&
                        i + 1 < n && std::isdigit(static_cast<unsigned char>(in[i + 1]))))) {
      std::size_t p = i + 1;
      while (p < n && in[p] != c && in[p] != '\n') {
        if (in[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      blank_until(p < n ? p + 1 : n);
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_ident(std::string_view hay, std::string_view needle,
                       std::size_t from, bool allow_scope_prefix,
                       bool require_call) {
  while (true) {
    const std::size_t pos = hay.find(needle, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    from = pos + 1;
    if (pos > 0) {
      const char before = hay[pos - 1];
      if (ident_char(before)) continue;
      if (before == '.' || (before == '>' && pos >= 2 && hay[pos - 2] == '-')) {
        continue;
      }
      if (!allow_scope_prefix && before == ':') continue;
    }
    std::size_t after = pos + needle.size();
    if (after < hay.size() && ident_char(hay[after])) continue;
    if (require_call) {
      while (after < hay.size() &&
             std::isspace(static_cast<unsigned char>(hay[after]))) {
        ++after;
      }
      if (after >= hay.size() || hay[after] != '(') continue;
    }
    return pos;
  }
}

std::size_t find_member_call(std::string_view hay, std::string_view needle,
                             std::size_t from) {
  while (true) {
    const std::size_t pos = hay.find(needle, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    from = pos + 1;
    if (pos == 0) continue;
    const char before = hay[pos - 1];
    const bool member = before == '.' ||
                        (before == '>' && pos >= 2 && hay[pos - 2] == '-');
    if (!member) continue;
    std::size_t after = pos + needle.size();
    if (after < hay.size() && ident_char(hay[after])) continue;
    after = skip_ws(hay, after);
    if (after >= hay.size() || hay[after] != '(') continue;
    return pos;
  }
}

int line_of(std::string_view text, std::size_t pos) {
  pos = std::min(pos, text.size());
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() + static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

std::size_t skip_ws(std::string_view text, std::size_t pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

std::size_t matching_paren(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < code.size(); ++p) {
    if (code[p] == '(') ++depth;
    if (code[p] == ')' && --depth == 0) return p;
  }
  return std::string_view::npos;
}

std::optional<std::string> call_string_arg(const SourceFile& f, std::size_t open) {
  std::size_t p = skip_ws(f.raw, open + 1);
  if (p >= f.raw.size() || f.raw[p] != '"') return std::nullopt;
  std::string value;
  for (++p; p < f.raw.size() && f.raw[p] != '"'; ++p) {
    if (f.raw[p] == '\\' && p + 1 < f.raw.size()) ++p;
    value.push_back(f.raw[p]);
  }
  return value;
}

std::vector<std::string> split_args(std::string_view args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string lock_base_name(std::string_view expr) {
  std::string s;
  for (const char c : expr) {
    if (!std::isspace(static_cast<unsigned char>(c))) s.push_back(c);
  }
  // Keep only the final component of any member-access chain.
  for (std::size_t p = s.size(); p-- > 0;) {
    if (s[p] == '.') {
      s = s.substr(p + 1);
      break;
    }
    if (s[p] == '>' && p > 0 && s[p - 1] == '-') {
      s = s.substr(p + 1);
      break;
    }
  }
  if (s.size() >= 2 && s.substr(s.size() - 2) == "()") s.resize(s.size() - 2);
  if (!s.empty() && s.front() == '&') s.erase(s.begin());
  if (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

bool load_tree(const std::string& root, Tree& out) {
  if (!fs::is_directory(root)) return false;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  out.files.reserve(files.size());
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    out.files.push_back(
        make_file(fs::relative(path, root).generic_string(), ss.str()));
  }
  return true;
}

SourceFile make_file(std::string rel, std::string raw) {
  SourceFile f;
  f.rel = std::move(rel);
  f.code = strip_comments_and_literals(raw);
  f.raw = std::move(raw);
  return f;
}

}  // namespace prema::analyze
