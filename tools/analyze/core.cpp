#include "analyze/core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace prema::analyze {

namespace fs = std::filesystem;

std::string fingerprint(const Finding& f) {
  return f.rule + "|" + f.file + "|" + f.message;
}

std::string strip_comments_and_literals(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto blank_until = [&](std::size_t end) {
    for (; i < end && i < n; ++i) out.push_back(in[i] == '\n' ? '\n' : ' ');
  };

  while (i < n) {
    const char c = in[i];
    // Line comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      std::size_t end = in.find('\n', i);
      blank_until(end == std::string_view::npos ? n : end);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      std::size_t end = in.find("*/", i + 2);
      blank_until(end == std::string_view::npos ? n : end + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(in[i - 1])) &&
                    in[i - 1] != '_'))) {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && in[p] != '(' && delim.size() <= 16) delim.push_back(in[p++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = in.find(closer, p);
      blank_until(end == std::string_view::npos ? n : end + closer.size());
      continue;
    }
    // Ordinary string / char literal. A lone apostrophe between digits is a
    // C++14 digit separator (1'000'000), not a char literal.
    if (c == '"' ||
        (c == '\'' && !(i > 0 && std::isdigit(static_cast<unsigned char>(in[i - 1])) &&
                        i + 1 < n && std::isdigit(static_cast<unsigned char>(in[i + 1]))))) {
      std::size_t p = i + 1;
      while (p < n && in[p] != c && in[p] != '\n') {
        if (in[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      blank_until(p < n ? p + 1 : n);
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_ident(std::string_view hay, std::string_view needle,
                       std::size_t from, bool allow_scope_prefix,
                       bool require_call) {
  while (true) {
    const std::size_t pos = hay.find(needle, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    from = pos + 1;
    if (pos > 0) {
      const char before = hay[pos - 1];
      if (ident_char(before)) continue;
      if (before == '.' || (before == '>' && pos >= 2 && hay[pos - 2] == '-')) {
        continue;
      }
      if (!allow_scope_prefix && before == ':') continue;
    }
    std::size_t after = pos + needle.size();
    if (after < hay.size() && ident_char(hay[after])) continue;
    if (require_call) {
      while (after < hay.size() &&
             std::isspace(static_cast<unsigned char>(hay[after]))) {
        ++after;
      }
      if (after >= hay.size() || hay[after] != '(') continue;
    }
    return pos;
  }
}

std::size_t find_member_call(std::string_view hay, std::string_view needle,
                             std::size_t from) {
  while (true) {
    const std::size_t pos = hay.find(needle, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    from = pos + 1;
    if (pos == 0) continue;
    const char before = hay[pos - 1];
    const bool member = before == '.' ||
                        (before == '>' && pos >= 2 && hay[pos - 2] == '-');
    if (!member) continue;
    std::size_t after = pos + needle.size();
    if (after < hay.size() && ident_char(hay[after])) continue;
    after = skip_ws(hay, after);
    if (after >= hay.size() || hay[after] != '(') continue;
    return pos;
  }
}

int line_of(std::string_view text, std::size_t pos) {
  pos = std::min(pos, text.size());
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() + static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

std::size_t skip_ws(std::string_view text, std::size_t pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

std::size_t matching_paren(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < code.size(); ++p) {
    if (code[p] == '(') ++depth;
    if (code[p] == ')' && --depth == 0) return p;
  }
  return std::string_view::npos;
}

std::size_t matching_brace(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < code.size(); ++p) {
    if (code[p] == '{') ++depth;
    if (code[p] == '}' && --depth == 0) return p;
  }
  return std::string_view::npos;
}

std::optional<std::string> call_string_arg(const SourceFile& f, std::size_t open) {
  std::size_t p = skip_ws(f.raw, open + 1);
  if (p >= f.raw.size() || f.raw[p] != '"') return std::nullopt;
  std::string value;
  for (++p; p < f.raw.size() && f.raw[p] != '"'; ++p) {
    if (f.raw[p] == '\\' && p + 1 < f.raw.size()) ++p;
    value.push_back(f.raw[p]);
  }
  return value;
}

std::vector<std::string> split_args(std::string_view args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string lock_base_name(std::string_view expr) {
  std::string s;
  for (const char c : expr) {
    if (!std::isspace(static_cast<unsigned char>(c))) s.push_back(c);
  }
  // Keep only the final component of any member-access chain.
  for (std::size_t p = s.size(); p-- > 0;) {
    if (s[p] == '.') {
      s = s.substr(p + 1);
      break;
    }
    if (s[p] == '>' && p > 0 && s[p - 1] == '-') {
      s = s.substr(p + 1);
      break;
    }
  }
  if (s.size() >= 2 && s.substr(s.size() - 2) == "()") s.resize(s.size() - 2);
  if (!s.empty() && s.front() == '&') s.erase(s.begin());
  if (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

bool allow_comment(const SourceFile& f, std::size_t pos, std::string_view rule) {
  const std::string needle = "analyze:allow(" + std::string(rule) + ")";
  pos = std::min(pos, f.raw.size());
  std::size_t line_begin = f.raw.rfind('\n', pos == 0 ? 0 : pos - 1);
  line_begin = line_begin == std::string::npos ? 0 : line_begin + 1;
  std::size_t line_end = f.raw.find('\n', pos);
  line_end = line_end == std::string::npos ? f.raw.size() : line_end;
  // The line itself, or the full line above it.
  std::size_t prev_begin = line_begin;
  if (line_begin >= 2) {
    const std::size_t above = f.raw.rfind('\n', line_begin - 2);
    prev_begin = above == std::string::npos ? 0 : above + 1;
  }
  return std::string_view(f.raw).substr(prev_begin, line_end - prev_begin)
             .find(needle) != std::string_view::npos;
}

bool load_tree(const std::string& root, Tree& out) {
  if (!fs::is_directory(root)) return false;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  out.files.reserve(files.size());
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    out.files.push_back(
        make_file(fs::relative(path, root).generic_string(), ss.str()));
  }
  return true;
}

SourceFile make_file(std::string rel, std::string raw) {
  SourceFile f;
  f.rel = std::move(rel);
  f.code = strip_comments_and_literals(raw);
  f.raw = std::move(raw);
  return f;
}

// ---------------------------------------------------------------------------
// Lock hierarchy
// ---------------------------------------------------------------------------

std::vector<LockEntry> parse_hierarchy(std::string_view text) {
  std::vector<LockEntry> entries;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::vector<std::string> fields;
    std::string cur;
    for (const char c : line + " ") {
      if (c == ' ' || c == '\t' || c == '\r') {
        if (!cur.empty()) fields.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (fields.empty()) continue;
    LockEntry e;
    e.name = fields[0];
    if (fields.size() >= 2) {
      for (const std::string& m : split_args(fields[1])) {
        LockMatcher matcher;
        if (const auto bang = m.find('!'); bang != std::string::npos) {
          matcher.path = m.substr(0, bang);
          matcher.ident = m.substr(bang + 1);
        } else {
          matcher.ident = m;
        }
        e.matchers.push_back(std::move(matcher));
      }
    }
    for (std::size_t i = 2; i < fields.size(); ++i) {
      if (fields[i] == "recursive") e.recursive = true;
      if (fields[i] == "noblock") e.noblock = true;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

int resolve_lock(const std::vector<LockEntry>& entries, std::string_view rel,
                 std::string_view base) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (const LockMatcher& m : entries[i].matchers) {
      if (m.ident != base) continue;
      if (!m.path.empty() && rel.find(m.path) == std::string_view::npos) continue;
      return static_cast<int>(i);
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Protocol specs
// ---------------------------------------------------------------------------

std::optional<ProtocolSpec> parse_protocol_spec(const std::string& spec_name,
                                                std::string_view text,
                                                std::vector<Finding>& errors) {
  ProtocolSpec spec;
  bool bad = false;
  int lineno = 0;
  std::size_t pos = 0;
  auto err = [&](int line, const std::string& msg) {
    errors.push_back({"protocol-fsm-spec", spec_name, line, msg});
    bad = true;
  };
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::vector<std::string> fields;
    std::string cur;
    for (const char c : line + " ") {
      if (c == ' ' || c == '\t' || c == '\r') {
        if (!cur.empty()) fields.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (fields.empty()) continue;
    const std::string& kw = fields[0];
    if (kw == "protocol") {
      if (fields.size() != 2) {
        err(lineno, "'protocol' takes exactly one name");
      } else {
        spec.name = fields[1];
      }
    } else if (kw == "files") {
      if (fields.size() != 2) {
        err(lineno, "'files' takes exactly one rel-path prefix");
      } else {
        spec.files = fields[1];
      }
    } else if (kw == "var") {
      if (fields.size() < 2) err(lineno, "'var' needs at least one identifier");
      for (std::size_t i = 1; i < fields.size(); ++i) {
        spec.vars.push_back(fields[i]);
      }
    } else if (kw == "transition") {
      if (fields.size() < 3) {
        err(lineno, "'transition' needs a name and at least fn=<ident>");
        continue;
      }
      ProtocolTransition t;
      t.name = fields[1];
      t.line = lineno;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        const std::string& kv = fields[i];
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          err(lineno, "transition attribute '" + kv + "' is not key=value");
          continue;
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "fn") {
          t.fn = value;
        } else if (key == "files") {
          t.files = value;
        } else if (key == "emits") {
          t.emits = value;
        } else if (key == "writes") {
          for (const std::string& w : split_args(value)) {
            if (!w.empty()) t.writes.push_back(w);
          }
        } else {
          err(lineno, "unknown transition attribute '" + key + "'");
        }
      }
      if (t.fn.empty()) {
        err(lineno, "transition '" + t.name + "' has no fn=");
        continue;
      }
      spec.transitions.push_back(std::move(t));
    } else {
      err(lineno, "unknown directive '" + kw + "'");
    }
  }
  if (spec.name.empty()) {
    err(1, "spec declares no 'protocol <name>'");
  }
  if (spec.files.empty()) {
    err(1, "spec declares no 'files <prefix>'");
  }
  // Every transition's writes must name declared vars.
  for (const ProtocolTransition& t : spec.transitions) {
    for (const std::string& w : t.writes) {
      if (std::find(spec.vars.begin(), spec.vars.end(), w) == spec.vars.end()) {
        err(t.line, "transition '" + t.name + "' writes undeclared var '" + w + "'");
      }
    }
  }
  if (bad) return std::nullopt;
  return spec;
}

// ---------------------------------------------------------------------------
// Atomics manifest
// ---------------------------------------------------------------------------

std::vector<AtomicEntry> parse_atomics_manifest(const std::string& manifest_name,
                                                std::string_view text,
                                                std::vector<Finding>& errors) {
  std::vector<AtomicEntry> entries;
  static const std::set<std::string, std::less<>> kRoles = {
      "flag", "counter", "seqcount", "published-ptr"};
  static const std::set<std::string, std::less<>> kOrders = {
      "relaxed", "acquire", "release", "acq_rel", "seq_cst"};
  auto err = [&](int line, const std::string& msg) {
    errors.push_back({"atomic-manifest", manifest_name, line, msg});
  };
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::vector<std::string> fields;
    std::string cur;
    for (const char c : line + " ") {
      if (c == ' ' || c == '\t' || c == '\r') {
        if (!cur.empty()) fields.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (fields.empty()) continue;
    AtomicEntry e;
    e.line = lineno;
    e.name = fields[0];
    if (e.name.find('=') != std::string::npos) {
      err(lineno, "entry must start with the declared name, got '" + e.name + "'");
      continue;
    }
    bool bad = false;
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::string& kv = fields[i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        err(lineno, "attribute '" + kv + "' is not key=value");
        bad = true;
        continue;
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "role") {
        if (kRoles.count(value) == 0) {
          err(lineno, "unknown role '" + value +
                          "' (flag, counter, seqcount or published-ptr)");
          bad = true;
        } else {
          e.role = value;
        }
      } else if (key == "orders") {
        for (const std::string& o : split_args(value)) {
          if (kOrders.count(o) == 0) {
            err(lineno, "unknown memory order '" + o +
                            "' (relaxed, acquire, release, acq_rel, seq_cst)");
            bad = true;
          } else {
            e.orders.insert(o);
          }
        }
      } else if (key == "class") {
        e.cls = value;
      } else if (key == "file") {
        e.path = value;
      } else {
        err(lineno, "unknown attribute '" + key + "'");
        bad = true;
      }
    }
    if (e.role.empty()) {
      err(lineno, "entry '" + e.name + "' declares no role=");
      bad = true;
    }
    if (e.orders.empty()) {
      err(lineno, "entry '" + e.name + "' declares no orders=");
      bad = true;
    }
    for (const AtomicEntry& prev : entries) {
      if (prev.name == e.name && prev.cls == e.cls && prev.path == e.path) {
        err(lineno, "duplicate entry for '" + e.name + "'");
        bad = true;
        break;
      }
    }
    if (!bad) entries.push_back(std::move(e));
  }
  return entries;
}

int resolve_atomic(const std::vector<AtomicEntry>& entries, std::string_view rel,
                   std::string_view cls, std::string_view name) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const AtomicEntry& e = entries[i];
    if (e.name != name) continue;
    if (!e.path.empty() && rel.find(e.path) == std::string_view::npos) continue;
    if (!e.cls.empty() && !cls.empty() && e.cls != cls) continue;
    return static_cast<int>(i);
  }
  return -1;
}

bool atomic_op_is_rmw(const std::string& op) {
  return op == "exchange" || op.compare(0, 6, "fetch_") == 0 ||
         op.compare(0, 16, "compare_exchange") == 0 || op == "++" ||
         op == "--" || (op.size() == 2 && op[1] == '=');
}

bool atomic_op_is_implicit(const AtomicOp& op) {
  if (!op.orders.empty()) return false;
  if (op.op == "load") return op.args == 0;
  if (op.op == "store" || op.op == "exchange" ||
      op.op.compare(0, 6, "fetch_") == 0) {
    return op.args == 1;
  }
  if (op.op.compare(0, 16, "compare_exchange") == 0) return op.args <= 2;
  return op.op == "=";  // plain assignment: an implicit seq_cst store
}

// ---------------------------------------------------------------------------
// Whole-program index
// ---------------------------------------------------------------------------

namespace {

bool is_keyword(std::string_view w) {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if",       "for",      "while",   "switch",   "catch",    "return",
      "sizeof",   "alignof",  "decltype", "noexcept", "new",      "delete",
      "throw",    "static_assert",       "assert",   "case",     "default",
      "do",       "else",     "operator", "co_await", "co_return", "typeid",
      "alignas",  "static_cast",         "const_cast",           "not",
      "reinterpret_cast",     "dynamic_cast",        "requires", "and", "or"};
  return kKeywords.count(w) != 0;
}

bool is_trailing_keyword(std::string_view w) {
  return w == "const" || w == "noexcept" || w == "override" || w == "final" ||
         w == "mutable" || w == "volatile" || w == "try";
}

/// Blank preprocessor lines (and their backslash continuations) so macro
/// definitions — X-macro tables, the annotation macros themselves — don't
/// masquerade as function definitions or call sites.
std::string blank_preprocessor(std::string_view code) {
  std::string out(code);
  std::size_t pos = 0;
  bool continued = false;
  while (pos < out.size()) {
    std::size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    const std::size_t first = skip_ws(out, pos);
    const bool directive = continued || (first < eol && out[first] == '#');
    if (directive) {
      // A trailing backslash continues the directive onto the next line.
      std::size_t last = eol;
      while (last > pos &&
             std::isspace(static_cast<unsigned char>(out[last - 1]))) {
        --last;
      }
      continued = last > pos && out[last - 1] == '\\';
      for (std::size_t p = pos; p < eol; ++p) {
        if (out[p] != '\n') out[p] = ' ';
      }
    } else {
      continued = false;
    }
    pos = eol + 1;
  }
  return out;
}

/// Identifier token ending at `end` (exclusive); empty when none.
std::string_view ident_before(std::string_view code, std::size_t end) {
  std::size_t begin = end;
  while (begin > 0 && ident_char(code[begin - 1])) --begin;
  return code.substr(begin, end - begin);
}

std::size_t skip_ws_back(std::string_view code, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(code[pos - 1]))) {
    --pos;
  }
  return pos;
}

/// Offset of the '(' matching the ')' ending at `close` (inclusive); npos
/// when unbalanced.
std::size_t matching_paren_back(std::string_view code, std::size_t close) {
  int depth = 0;
  for (std::size_t p = close + 1; p-- > 0;) {
    if (code[p] == ')') ++depth;
    if (code[p] == '(' && --depth == 0) return p;
  }
  return std::string_view::npos;
}

std::size_t matching_bracket_back(std::string_view code, std::size_t close) {
  int depth = 0;
  for (std::size_t p = close + 1; p-- > 0;) {
    if (code[p] == ']') ++depth;
    if (code[p] == '[' && --depth == 0) return p;
  }
  return std::string_view::npos;
}

/// End of the scope the position `pos` sits in: the '}' closing the innermost
/// enclosing brace, clamped to `limit`.
std::size_t scope_end(std::string_view code, std::size_t pos, std::size_t limit) {
  int depth = 0;
  for (std::size_t p = pos; p < limit && p < code.size(); ++p) {
    if (code[p] == '{') ++depth;
    if (code[p] == '}') {
      if (depth == 0) return p;
      --depth;
    }
  }
  return limit;
}

/// Parse a constructor member-initializer list starting just after ':';
/// returns the offset of the body '{', or npos when this is not one.
std::size_t scan_init_list(std::string_view code, std::size_t p) {
  while (true) {
    p = skip_ws(code, p);
    if (p >= code.size()) return std::string_view::npos;
    if (code[p] == '{') return p;
    const std::size_t start = p;
    while (p < code.size()) {
      if (ident_char(code[p])) {
        ++p;
      } else if (code[p] == ':' && p + 1 < code.size() && code[p + 1] == ':') {
        p += 2;
      } else if (code[p] == '<') {
        int depth = 1;
        ++p;
        while (p < code.size() && depth > 0) {
          if (code[p] == '<') ++depth;
          if (code[p] == '>') --depth;
          ++p;
        }
      } else {
        break;
      }
    }
    if (p == start) return std::string_view::npos;
    p = skip_ws(code, p);
    if (p >= code.size()) return std::string_view::npos;
    if (code[p] == '(') {
      const std::size_t close = matching_paren(code, p);
      if (close == std::string_view::npos) return std::string_view::npos;
      p = close + 1;
    } else if (code[p] == '{') {
      const std::size_t close = matching_brace(code, p);
      if (close == std::string_view::npos) return std::string_view::npos;
      p = close + 1;
    } else {
      return std::string_view::npos;
    }
    p = skip_ws(code, p);
    if (p < code.size() && code[p] == ',') {
      ++p;
      continue;
    }
    if (p < code.size() && code[p] == '{') return p;
    return std::string_view::npos;
  }
}

}  // namespace

/// Walk a member-access chain backwards from `end` (exclusive end of the
/// final identifier). Appends components front-first into `chain`; returns
/// the offset of the chain's first component, or npos on failure (the chain
/// starts from a call/temporary we cannot name).
std::size_t parse_chain_back(std::string_view code, std::size_t end,
                             std::vector<std::string>& chain) {
  std::size_t p = end;
  for (int hops = 0; hops < 8; ++hops) {
    // Skip index groups: tx_[dst] — the component name precedes the '['.
    while (p > 0 && code[p - 1] == ']') {
      const std::size_t open = matching_bracket_back(code, p - 1);
      if (open == std::string_view::npos) return std::string_view::npos;
      p = open;
    }
    if (p > 0 && code[p - 1] == ')') return std::string_view::npos;  // temp
    const std::string_view comp = ident_before(code, p);
    if (comp.empty()) return std::string_view::npos;
    chain.insert(chain.begin(), std::string(comp));
    p -= comp.size();
    if (p >= 1 && code[p - 1] == '.') {
      --p;
      continue;
    }
    if (p >= 2 && code[p - 1] == '>' && code[p - 2] == '-') {
      p -= 2;
      continue;
    }
    return p;
  }
  return std::string_view::npos;
}

namespace {

void collect_class_regions(const Tree& tree, int fi, const std::string& pp,
                           std::vector<ClassRegion>& out) {
  for (const char* kw : {"class", "struct"}) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_ident(pp, kw, from, false, false);
      if (pos == std::string::npos) break;
      from = pos + 1;
      // `enum class` is not a class region.
      if (ident_before(pp, skip_ws_back(pp, pos)) == "enum") continue;
      std::size_t p = skip_ws(pp, pos + std::string_view(kw).size());
      std::size_t name_begin = p;
      while (p < pp.size() && ident_char(pp[p])) ++p;
      if (p == name_begin) continue;  // anonymous
      const std::string name = pp.substr(name_begin, p - name_begin);
      p = skip_ws(pp, p);
      if (p < pp.size() && pp.compare(p, 5, "final") == 0) p = skip_ws(pp, p + 5);
      if (p >= pp.size()) continue;
      if (pp[p] == ',' || pp[p] == '>' || pp[p] == ';') continue;  // tmpl / fwd
      if (pp[p] == ':') {
        if (p + 1 < pp.size() && pp[p + 1] == ':') continue;  // qualified use
        while (p < pp.size() && pp[p] != '{' && pp[p] != ';') ++p;
      }
      if (p >= pp.size() || pp[p] != '{') continue;
      const std::size_t close = matching_brace(pp, p);
      if (close == std::string::npos) continue;
      out.push_back({name, fi, p, close});
    }
  }
  (void)tree;
}

void collect_fields(const SourceFile& f, const std::string& pp,
                    const ClassRegion& region, std::vector<FieldDecl>& out) {
  // Member-scope statements: text between ';' / '}' boundaries at the
  // region's top brace depth. Function bodies and nested classes nest one
  // level deeper and terminate with '}', so their statements are dropped.
  std::size_t stmt_begin = region.body_begin + 1;
  int depth = 0;
  for (std::size_t p = region.body_begin + 1; p < region.body_end; ++p) {
    const char c = pp[p];
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c == '}') {
      --depth;
      if (depth == 0) {
        // End of an inline body — unless ';' follows directly, which makes
        // the braces a member initializer (`TraceEvent work_ {};`): keep the
        // statement so the declaration survives.
        const std::size_t nx = skip_ws(pp, p + 1);
        if (nx >= region.body_end || pp[nx] != ';') stmt_begin = p + 1;
      }
      continue;
    }
    if (depth != 0) continue;
    if (c == ':' && p + 1 < region.body_end && pp[p + 1] != ':' &&
        (p == 0 || pp[p - 1] != ':')) {
      const std::string_view label = ident_before(pp, skip_ws_back(pp, p));
      if (label == "public" || label == "private" || label == "protected") {
        stmt_begin = p + 1;
      }
      continue;
    }
    if (c != ';') continue;
    const std::string_view s =
        std::string_view(pp).substr(stmt_begin, p - stmt_begin);
    stmt_begin = p + 1;
    // Reject non-data statements.
    const std::size_t first = skip_ws(s, 0);
    if (first >= s.size()) continue;
    const std::string_view head = [&] {
      std::size_t e = first;
      while (e < s.size() && ident_char(s[e])) ++e;
      return s.substr(first, e - first);
    }();
    if (head == "using" || head == "typedef" || head == "friend" ||
        head == "template" || head == "static_assert" || head == "enum" ||
        head == "class" || head == "struct" || head == "union") {
      continue;
    }
    // Cut before any initializer / annotation: the declared name is the last
    // identifier left of the cut.
    std::size_t cut = s.size();
    int pd = 0;
    for (std::size_t q = 0; q < s.size(); ++q) {
      const char d = s[q];
      if (d == '(' || d == '<') ++pd;
      if (d == ')' || d == '>') pd = pd > 0 ? pd - 1 : 0;
      if (pd != 0) continue;
      if (d == '=' || d == '{' || d == '[') {
        cut = q;
        break;
      }
    }
    if (const std::size_t prema = s.find("PREMA_"); prema < cut) cut = prema;
    std::size_t name_end = skip_ws_back(s, cut);
    const std::string_view name = ident_before(s, name_end);
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0]))) {
      continue;
    }
    if (is_trailing_keyword(name) || is_keyword(name)) continue;
    const std::string_view type_raw = s.substr(0, name_end - name.size());
    // A top-level '(' left of the name means this was a function declaration.
    bool fn_decl = false;
    int fd = 0;
    for (const char d : type_raw) {
      if (d == '<') ++fd;
      if (d == '>') fd = fd > 0 ? fd - 1 : 0;
      if (d == '(' && fd == 0) fn_decl = true;
    }
    if (fn_decl) continue;
    std::string type;
    for (const char d : type_raw) {
      if (!std::isspace(static_cast<unsigned char>(d))) {
        type.push_back(d);
      } else if (!type.empty() && type.back() != ' ') {
        type.push_back(' ');
      }
    }
    while (!type.empty() && type.back() == ' ') type.pop_back();
    if (type.empty()) continue;
    FieldDecl field;
    field.cls = region.name;
    field.name = std::string(name);
    field.type = type;
    field.file = region.file;
    field.pos = static_cast<std::size_t>(s.data() - pp.data()) +
                (name_end - name.size());
    field.line = line_of(pp, field.pos);
    field.guarded = s.find("PREMA_GUARDED_BY") != std::string_view::npos ||
                    s.find("PREMA_PT_GUARDED_BY") != std::string_view::npos ||
                    type.find("atomic") != std::string::npos;
    out.push_back(std::move(field));
  }
  (void)f;
}

void collect_functions(const Tree& tree, int fi, const std::string& pp,
                       std::vector<FunctionDef>& out) {
  const std::string_view code = pp;
  for (std::size_t q = 0; q < code.size(); ++q) {
    if (code[q] != '(') continue;
    const std::size_t name_end = skip_ws_back(code, q);
    const std::string_view name = ident_before(code, name_end);
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0]))) {
      continue;
    }
    if (is_keyword(name) || name.substr(0, 6) == "PREMA_") continue;
    const std::size_t name_begin = name_end - name.size();
    // Qualification chain: A::B::name.
    std::vector<std::string> quals;
    std::size_t s = name_begin;
    while (s >= 2 && code[s - 1] == ':' && code[s - 2] == ':') {
      const std::string_view part = ident_before(code, s - 2);
      if (part.empty()) break;
      quals.insert(quals.begin(), std::string(part));
      s = s - 2 - part.size();
    }
    // Preceding context: member-initializer items and comma lists are not
    // function definitions.
    const std::size_t t = skip_ws_back(code, s);
    if (t > 0) {
      const char before = code[t - 1];
      if (before == ',' || before == '~' || before == '.' || before == '<') {
        continue;
      }
      if (before == ':' && !(t >= 2 && code[t - 2] == ':')) {
        const std::string_view label = ident_before(code, skip_ws_back(code, t - 1));
        if (label != "public" && label != "private" && label != "protected") {
          continue;
        }
      }
    }
    const std::size_t close = matching_paren(code, q);
    if (close == std::string_view::npos) continue;
    // Trailing-token walk to the body '{' (or rejection).
    std::size_t u = close + 1;
    std::vector<std::string> requires_locks;
    std::size_t body = std::string_view::npos;
    while (u < code.size()) {
      u = skip_ws(code, u);
      if (u >= code.size()) break;
      const char ch = code[u];
      if (ch == '{') {
        body = u;
        break;
      }
      if (ch == ':' && (u + 1 >= code.size() || code[u + 1] != ':')) {
        body = scan_init_list(code, u + 1);
        break;
      }
      if (ch == '-' && u + 1 < code.size() && code[u + 1] == '>') {
        // Trailing return type: skip tokens up to the body or ';'.
        u += 2;
        while (u < code.size() && code[u] != '{' && code[u] != ';') {
          if (code[u] == '(') {
            const std::size_t c2 = matching_paren(code, u);
            if (c2 == std::string_view::npos) break;
            u = c2;
          }
          ++u;
        }
        continue;
      }
      if (!ident_char(ch)) break;
      std::size_t w_end = u;
      while (w_end < code.size() && ident_char(code[w_end])) ++w_end;
      const std::string_view word = code.substr(u, w_end - u);
      if (is_trailing_keyword(word)) {
        u = w_end;
        if (word == "noexcept") {
          const std::size_t nw = skip_ws(code, u);
          if (nw < code.size() && code[nw] == '(') {
            const std::size_t c2 = matching_paren(code, nw);
            if (c2 == std::string_view::npos) break;
            u = c2 + 1;
          }
        }
        continue;
      }
      if (word.substr(0, 6) == "PREMA_") {
        const std::size_t open2 = skip_ws(code, w_end);
        if (open2 < code.size() && code[open2] == '(') {
          const std::size_t c2 = matching_paren(code, open2);
          if (c2 == std::string_view::npos) break;
          if (word == "PREMA_REQUIRES") {
            for (const std::string& arg :
                 split_args(code.substr(open2 + 1, c2 - open2 - 1))) {
              const std::string base = lock_base_name(arg);
              if (!base.empty()) requires_locks.push_back(base);
            }
          }
          u = c2 + 1;
        } else {
          u = w_end;
        }
        continue;
      }
      break;
    }
    if (body == std::string_view::npos) continue;
    const std::size_t body_end = matching_brace(code, body);
    if (body_end == std::string_view::npos) continue;
    FunctionDef fn;
    fn.name = std::string(name);
    if (!quals.empty()) {
      std::string qual;
      for (const std::string& part : quals) qual += part + "::";
      fn.qual = qual + fn.name;
    }
    fn.file = fi;
    fn.name_pos = name_begin;
    fn.line = line_of(code, name_begin);
    fn.body_begin = body;
    fn.body_end = body_end;
    fn.requires_locks = std::move(requires_locks);
    out.push_back(std::move(fn));
  }
  (void)tree;
}

void collect_capabilities(const Tree& tree, Index& idx) {
  for (const SourceFile& f : tree.files) {
    const std::string_view code = f.code;
    for (const char* macro :
         {"PREMA_RETURN_CAPABILITY", "PREMA_ASSERT_CAPABILITY"}) {
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_ident(code, macro, from, false, true);
        if (pos == std::string_view::npos) break;
        from = pos + 1;
        const std::size_t open = code.find('(', pos);
        const std::size_t close = matching_paren(code, open);
        if (close == std::string_view::npos) continue;
        const auto args = split_args(code.substr(open + 1, close - open - 1));
        if (args.empty()) continue;
        const std::string base = lock_base_name(args[0]);
        if (base.empty()) continue;
        // The annotated function: `name(...) [const ...] MACRO(...)`.
        std::size_t r = skip_ws_back(code, pos);
        while (true) {
          const std::string_view word = ident_before(code, r);
          if (!word.empty() && is_trailing_keyword(word)) {
            r = skip_ws_back(code, r - word.size());
            continue;
          }
          break;
        }
        if (r == 0 || code[r - 1] != ')') continue;
        const std::size_t po = matching_paren_back(code, r - 1);
        if (po == std::string_view::npos) continue;
        const std::string_view fname = ident_before(code, skip_ws_back(code, po));
        if (fname.empty()) continue;
        if (std::string_view(macro) == "PREMA_RETURN_CAPABILITY") {
          idx.capability_alias[std::string(fname)] = base;
        } else {
          idx.assert_grants[std::string(fname)] = base;
        }
      }
    }
  }
}

void collect_acquisitions(const Index& idx, FunctionDef& fn,
                          const SourceFile& f) {
  const std::string_view code = f.code;
  const std::size_t b = fn.body_begin;
  const std::size_t e = fn.body_end;
  auto canon = [&](const std::string& base) {
    const auto it = idx.capability_alias.find(base);
    return it == idx.capability_alias.end() ? base : it->second;
  };
  auto find_unlock = [&](std::string_view var, std::size_t from,
                         std::size_t limit) {
    std::size_t p = from;
    while (true) {
      const std::size_t m = find_member_call(code, "unlock", p);
      if (m == std::string_view::npos || m >= limit) return limit;
      p = m + 1;
      std::size_t r = m - 1;  // '.' or '->'
      if (code[r] == '>') --r;
      if (ident_before(code, r) == var) return m;
    }
  };

  for (const char* type : {"LockGuard", "UniqueLock", "RecursiveLock"}) {
    std::size_t from = b;
    while (true) {
      const std::size_t pos = find_ident(code, type, from, true, false);
      if (pos == std::string_view::npos || pos >= e) break;
      from = pos + 1;
      if (pos < 2 || code[pos - 1] != ':' || code[pos - 2] != ':') continue;
      if (ident_before(code, pos - 2) != "util") continue;
      std::size_t p = skip_ws(code, pos + std::string_view(type).size());
      const std::size_t var_begin = p;
      while (p < code.size() && ident_char(code[p])) ++p;
      const std::string var(code.substr(var_begin, p - var_begin));
      p = skip_ws(code, p);
      if (p >= code.size() || code[p] != '(') continue;
      const std::size_t close = matching_paren(code, p);
      if (close == std::string_view::npos) continue;
      const auto args = split_args(code.substr(p + 1, close - p - 1));
      if (args.empty()) continue;
      LockAcq acq;
      acq.pos = pos;
      acq.base = canon(lock_base_name(args[0]));
      acq.guard_var = var;
      const std::size_t scope = scope_end(code, pos, e);
      acq.end = var.empty() ? scope : find_unlock(var, close, scope);
      fn.acquisitions.push_back(std::move(acq));
    }
  }

  // Node::lock_state() — an RAII handle over the node's state mutex, usually
  // bound as `auto lock = n.lock_state();` and sometimes released early with
  // `lock.unlock()`.
  std::size_t from = b;
  while (true) {
    const std::size_t pos = find_member_call(code, "lock_state", from);
    if (pos == std::string_view::npos || pos >= e) break;
    from = pos + 1;
    // Recover the bound variable, if any: walk back over the receiver chain
    // to `=`, then take the identifier before it.
    std::string var;
    std::size_t r = pos;
    while (r > 0 && (ident_char(code[r - 1]) || code[r - 1] == '.' ||
                     code[r - 1] == '_' ||
                     (code[r - 1] == '>' && r >= 2 && code[r - 2] == '-'))) {
      r -= (code[r - 1] == '>') ? 2 : 1;
    }
    r = skip_ws_back(code, r);
    if (r > 0 && code[r - 1] == '=' && (r < 2 || code[r - 2] != '=')) {
      var = std::string(ident_before(code, skip_ws_back(code, r - 1)));
    }
    LockAcq acq;
    acq.pos = pos;
    acq.base = "state_mutex";
    acq.guard_var = var;
    const std::size_t scope = scope_end(code, pos, e);
    acq.end = var.empty() ? scope : find_unlock(var, pos, scope);
    fn.acquisitions.push_back(std::move(acq));
  }

  // Assert-capability grantors prove the lock for the rest of the scope.
  for (const auto& [fname, base] : idx.assert_grants) {
    std::size_t from2 = b;
    while (true) {
      const std::size_t pos = find_ident(code, fname, from2, false, true);
      const std::size_t mpos = find_member_call(code, fname, from2);
      const std::size_t hit = std::min(pos, mpos);
      if (hit == std::string_view::npos || hit >= e) break;
      from2 = hit + 1;
      LockAcq acq;
      acq.pos = hit;
      acq.base = canon(base);
      acq.end = scope_end(code, hit, e);
      fn.acquisitions.push_back(std::move(acq));
    }
  }

  std::sort(fn.acquisitions.begin(), fn.acquisitions.end(),
            [](const LockAcq& a, const LockAcq& b2) { return a.pos < b2.pos; });

  // Canonicalize REQUIRES facts through capability aliases too.
  for (std::string& base : fn.requires_locks) base = canon(base);
}

/// PREMA_REQUIRES facts attached to *declarations* (`void f() PREMA_REQUIRES(m);`
/// in a header) — the out-of-line definition does not repeat the macro, so
/// the fact is collected here and merged into the matching FunctionDefs.
/// Keys are "Class::name" when the declaration sits inside a class region
/// (so an unrelated method that happens to share a name is not polluted),
/// bare names for free functions.
void collect_decl_requires(const Tree& tree, const Index& idx,
                           std::map<std::string, std::set<std::string>>& out) {
  for (std::size_t fidx = 0; fidx < tree.files.size(); ++fidx) {
    const SourceFile& f = tree.files[fidx];
    const std::string_view code = f.code;
    std::size_t from = 0;
    while (true) {
      const std::size_t pos =
          find_ident(code, "PREMA_REQUIRES", from, false, true);
      if (pos == std::string_view::npos) break;
      from = pos + 1;
      const std::size_t open = code.find('(', pos);
      const std::size_t close = matching_paren(code, open);
      if (close == std::string_view::npos) continue;
      // A declaration ends in ';' before any '{' — definitions were already
      // captured by collect_functions' trailing-token walk.
      std::size_t q = close + 1;
      while (q < code.size() && code[q] != ';' && code[q] != '{' &&
             code[q] != '}') {
        ++q;
      }
      if (q >= code.size() || code[q] != ';') continue;
      // Function name: walk back over trailing keywords to the parameter
      // list's ')', then take the identifier before its '('.
      std::size_t r = skip_ws_back(code, pos);
      std::string name;
      for (int guard = 0; guard < 6 && r > 0; ++guard) {
        if (code[r - 1] == ')') {
          const std::size_t po = matching_paren_back(code, r - 1);
          if (po == std::string_view::npos) break;
          name = std::string(ident_before(code, skip_ws_back(code, po)));
          break;
        }
        const std::string_view word = ident_before(code, r);
        if (word.empty() || !is_trailing_keyword(word)) break;
        r = skip_ws_back(code, r - word.size());
      }
      if (name.empty() || is_keyword(name)) continue;
      // Qualify by the innermost class region containing the declaration.
      const ClassRegion* owner = nullptr;
      for (const ClassRegion& region : idx.classes) {
        if (region.file != static_cast<int>(fidx) ||
            pos <= region.body_begin || pos >= region.body_end) {
          continue;
        }
        if (owner == nullptr || region.body_end - region.body_begin <
                                    owner->body_end - owner->body_begin) {
          owner = &region;
        }
      }
      const std::string key =
          owner != nullptr ? owner->name + "::" + name : name;
      for (const std::string& arg :
           split_args(code.substr(open + 1, close - open - 1))) {
        const std::string base = lock_base_name(arg);
        if (!base.empty()) out[key].insert(base);
      }
    }
  }
}

std::string type_class(const Index& idx, const std::string& type) {
  // Last identifier in the declaration's type text that names a known class:
  // `std::unique_ptr<ReliableLink>` -> ReliableLink, `Scheduler` -> itself.
  std::string best;
  std::size_t p = 0;
  while (p < type.size()) {
    if (!ident_char(type[p])) {
      ++p;
      continue;
    }
    std::size_t end = p;
    while (end < type.size() && ident_char(type[end])) ++end;
    const std::string word = type.substr(p, end - p);
    if (idx.class_names.count(word) != 0) best = word;
    p = end;
  }
  return best;
}

/// Declared class of a local/parameter identifier inside `fn`, scanning the
/// signature and body text before `before` for `Cls[&*] name`.
std::string local_type_of(const Index& idx, const SourceFile& f,
                          const FunctionDef& fn, const std::string& name,
                          std::size_t before) {
  const std::string_view code = f.code;
  std::size_t from = fn.name_pos;
  while (true) {
    const std::size_t pos = find_ident(code, name, from, false, false);
    if (pos == std::string_view::npos || pos >= before) return "";
    from = pos + 1;
    std::size_t r = skip_ws_back(code, pos);
    while (r > 0 && (code[r - 1] == '&' || code[r - 1] == '*')) --r;
    r = skip_ws_back(code, r);
    const std::string_view word = ident_before(code, r);
    if (!word.empty() && idx.class_names.count(std::string(word)) != 0) {
      return std::string(word);
    }
  }
}

void collect_calls(const Index& idx, int fi, const SourceFile& f,
                   const std::string& pp, std::vector<CallSite>& out) {
  const FunctionDef& fn = idx.funcs[static_cast<std::size_t>(fi)];
  const std::string_view code = pp;
  for (std::size_t q = fn.body_begin; q < fn.body_end; ++q) {
    if (code[q] != '(') continue;
    const std::size_t name_end = skip_ws_back(code, q);
    const std::string_view name = ident_before(code, name_end);
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0]))) {
      continue;
    }
    if (is_keyword(name) || is_trailing_keyword(name) ||
        name.substr(0, 6) == "PREMA_") {
      continue;
    }
    const std::size_t name_begin = name_end - name.size();
    CallSite call;
    call.caller = fi;
    call.pos = name_begin;
    call.name = std::string(name);
    const char before = name_begin > 0 ? code[name_begin - 1] : ' ';
    const bool member =
        before == '.' ||
        (before == '>' && name_begin >= 2 && code[name_begin - 2] == '-');
    auto resolve_unique = [&](const std::map<std::string, std::vector<int>>& m,
                              const std::string& key) {
      const auto it = m.find(key);
      return (it != m.end() && it->second.size() == 1) ? it->second[0] : -1;
    };
    if (member) {
      std::size_t r = name_begin - 1;
      if (code[r] == '>') --r;
      std::string recv(ident_before(code, r));
      std::string cls;
      if (!recv.empty()) {
        if (const auto it = idx.member_types.find(recv);
            it != idx.member_types.end()) {
          cls = it->second;
        } else {
          cls = local_type_of(idx, f, fn, recv, name_begin);
        }
      }
      if (!cls.empty()) {
        call.callee = resolve_unique(idx.by_qual, cls + "::" + call.name);
      }
      if (call.callee < 0) {
        call.callee = resolve_unique(idx.by_name, call.name);
      }
    } else {
      std::vector<std::string> quals;
      std::size_t s = name_begin;
      while (s >= 2 && code[s - 1] == ':' && code[s - 2] == ':') {
        const std::string_view part = ident_before(code, s - 2);
        if (part.empty()) break;
        quals.insert(quals.begin(), std::string(part));
        s = s - 2 - part.size();
      }
      if (!quals.empty()) {
        std::string qual;
        for (const std::string& part : quals) qual += part + "::";
        call.callee = resolve_unique(idx.by_qual, qual + call.name);
      } else {
        call.callee = resolve_unique(idx.by_name, call.name);
      }
    }
    out.push_back(std::move(call));
  }
}

}  // namespace

int Index::enclosing(int file, std::size_t pos) const {
  int best = -1;
  std::size_t best_span = 0;
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    const FunctionDef& fn = funcs[i];
    if (fn.file != file || pos < fn.body_begin || pos >= fn.body_end) continue;
    const std::size_t span = fn.body_end - fn.body_begin;
    if (best < 0 || span < best_span) {
      best = static_cast<int>(i);
      best_span = span;
    }
  }
  return best;
}

const FieldDecl* Index::find_field(const std::string& cls_hint, int file,
                                   const std::string& name) const {
  if (!cls_hint.empty()) {
    for (const FieldDecl& f : fields) {
      if (f.cls == cls_hint && f.name == name) return &f;
    }
  }
  if (file < 0 || tree == nullptr) return nullptr;
  auto stem = [](const std::string& rel) {
    const std::size_t dot = rel.rfind('.');
    return dot == std::string::npos ? rel : rel.substr(0, dot);
  };
  const std::string want = stem(tree->files[static_cast<std::size_t>(file)].rel);
  for (const FieldDecl& f : fields) {
    if (f.name != name) continue;
    if (stem(tree->files[static_cast<std::size_t>(f.file)].rel) == want) {
      return &f;
    }
  }
  return nullptr;
}

Index build_index(const Tree& tree, const Executor* exec) {
  // Phases over independent files (or functions) run through `exec` when one
  // is supplied; each task writes its own slot and slots merge in file/func
  // order, so the index is byte-identical to the serial build at any width.
  const auto shard = [exec](std::size_t n,
                            const std::function<void(std::size_t)>& task) {
    if (exec != nullptr && n > 1) {
      exec->run(n, task);
    } else {
      for (std::size_t i = 0; i < n; ++i) task(i);
    }
  };
  Index idx;
  idx.tree = &tree;
  const std::size_t nfiles = tree.files.size();
  std::vector<std::string> pps(nfiles);
  std::vector<std::vector<ClassRegion>> regions(nfiles);
  shard(nfiles, [&](std::size_t fi) {
    pps[fi] = blank_preprocessor(tree.files[fi].code);
    collect_class_regions(tree, static_cast<int>(fi), pps[fi], regions[fi]);
  });
  for (const std::vector<ClassRegion>& file_regions : regions) {
    idx.classes.insert(idx.classes.end(), file_regions.begin(),
                       file_regions.end());
  }
  for (const ClassRegion& region : idx.classes) {
    idx.class_names.insert(region.name);
  }
  // Fields: innermost region owns a declaration, so scan small regions last
  // and let exact (cls, name) duplicates from the enclosing region stand —
  // find_field prefers the first hit with a class hint, and nested regions
  // have distinct names in practice.
  std::vector<std::vector<FieldDecl>> fields(idx.classes.size());
  shard(idx.classes.size(), [&](std::size_t ri) {
    const ClassRegion& region = idx.classes[ri];
    collect_fields(tree.files[static_cast<std::size_t>(region.file)],
                   pps[static_cast<std::size_t>(region.file)], region,
                   fields[ri]);
  });
  for (std::vector<FieldDecl>& region_fields : fields) {
    for (FieldDecl& field : region_fields) {
      idx.fields.push_back(std::move(field));
    }
  }
  // Drop fields whose offsets fall inside a *smaller* nested region of a
  // different class: the nested scan already records them under the right
  // class, keep only the innermost attribution.
  {
    std::vector<FieldDecl> keep;
    for (const FieldDecl& f : idx.fields) {
      bool inner_owns = false;
      for (const ClassRegion& region : idx.classes) {
        if (region.file != f.file || region.name == f.cls) continue;
        if (f.pos > region.body_begin && f.pos < region.body_end) {
          // Is the nested region itself inside the recorded class? Then the
          // nested class is the true owner.
          for (const ClassRegion& outer : idx.classes) {
            if (outer.file == f.file && outer.name == f.cls &&
                region.body_begin > outer.body_begin &&
                region.body_end < outer.body_end) {
              inner_owns = true;
            }
          }
        }
      }
      if (!inner_owns) keep.push_back(f);
    }
    idx.fields = std::move(keep);
  }
  collect_capabilities(tree, idx);
  std::vector<std::vector<FunctionDef>> funcs(nfiles);
  shard(nfiles, [&](std::size_t fi) {
    collect_functions(tree, static_cast<int>(fi), pps[fi], funcs[fi]);
  });
  for (std::vector<FunctionDef>& file_funcs : funcs) {
    for (FunctionDef& fn : file_funcs) {
      idx.funcs.push_back(std::move(fn));
    }
  }
  for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
    FunctionDef& fn = idx.funcs[i];
    if (fn.qual.empty()) {
      // Inline method: adopt the innermost class region containing the name.
      const ClassRegion* best = nullptr;
      for (const ClassRegion& region : idx.classes) {
        if (region.file != fn.file || fn.name_pos <= region.body_begin ||
            fn.name_pos >= region.body_end) {
          continue;
        }
        if (best == nullptr ||
            region.body_end - region.body_begin <
                best->body_end - best->body_begin) {
          best = &region;
        }
      }
      fn.qual = best != nullptr ? best->name + "::" + fn.name : fn.name;
    }
    idx.by_name[fn.name].push_back(static_cast<int>(i));
    idx.by_qual[fn.qual].push_back(static_cast<int>(i));
  }
  // Member-variable types, kept only when unambiguous tree-wide.
  {
    std::map<std::string, std::string> types;
    std::set<std::string> ambiguous;
    for (const FieldDecl& f : idx.fields) {
      const std::string cls = type_class(idx, f.type);
      if (cls.empty()) continue;
      const auto [it, inserted] = types.emplace(f.name, cls);
      if (!inserted && it->second != cls) ambiguous.insert(f.name);
    }
    for (const std::string& name : ambiguous) types.erase(name);
    idx.member_types = std::move(types);
  }
  // Merge declaration-site REQUIRES facts (headers) into the definitions;
  // collect_acquisitions canonicalizes them through capability aliases.
  {
    std::map<std::string, std::set<std::string>> decl_req;
    collect_decl_requires(tree, idx, decl_req);
    for (FunctionDef& fn : idx.funcs) {
      auto it = decl_req.find(fn.qual);
      if (it == decl_req.end() && fn.qual == fn.name) {
        it = decl_req.find(fn.name);
      }
      if (it == decl_req.end()) continue;
      for (const std::string& base : it->second) {
        if (std::find(fn.requires_locks.begin(), fn.requires_locks.end(),
                      base) == fn.requires_locks.end()) {
          fn.requires_locks.push_back(base);
        }
      }
    }
  }
  // Each task mutates one FunctionDef and reads the (now frozen) shared maps.
  shard(idx.funcs.size(), [&](std::size_t i) {
    collect_acquisitions(idx, idx.funcs[i],
                         tree.files[static_cast<std::size_t>(idx.funcs[i].file)]);
  });
  std::vector<std::vector<CallSite>> calls(idx.funcs.size());
  shard(idx.funcs.size(), [&](std::size_t i) {
    collect_calls(idx, static_cast<int>(i),
                  tree.files[static_cast<std::size_t>(idx.funcs[i].file)],
                  pps[static_cast<std::size_t>(idx.funcs[i].file)], calls[i]);
  });
  for (std::vector<CallSite>& fn_calls : calls) {
    for (CallSite& call : fn_calls) {
      idx.calls.push_back(std::move(call));
    }
  }
  return idx;
}

std::set<std::string> held_at(const Index& idx,
                              const std::vector<std::set<std::string>>& entry,
                              int fi, std::size_t pos) {
  std::set<std::string> held;
  if (fi < 0 || static_cast<std::size_t>(fi) >= idx.funcs.size()) return held;
  if (static_cast<std::size_t>(fi) < entry.size()) {
    held = entry[static_cast<std::size_t>(fi)];
  }
  for (const LockAcq& acq : idx.funcs[static_cast<std::size_t>(fi)].acquisitions) {
    if (acq.pos <= pos && pos < acq.end) held.insert(acq.base);
  }
  return held;
}

std::vector<std::set<std::string>> propagate_entry_locks(const Index& idx) {
  std::vector<std::set<std::string>> entry(idx.funcs.size());
  for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
    entry[i].insert(idx.funcs[i].requires_locks.begin(),
                    idx.funcs[i].requires_locks.end());
  }
  bool changed = true;
  for (int iter = 0; changed && iter < 32; ++iter) {
    changed = false;
    for (const CallSite& call : idx.calls) {
      if (call.callee < 0) continue;
      const std::set<std::string> held =
          held_at(idx, entry, call.caller, call.pos);
      auto& dst = entry[static_cast<std::size_t>(call.callee)];
      for (const std::string& lock : held) {
        if (dst.insert(lock).second) changed = true;
      }
    }
  }
  return entry;
}

std::vector<WriteSite> collect_writes(const SourceFile& f, std::size_t begin,
                                      std::size_t end) {
  const std::string_view code = f.code;
  end = std::min(end, code.size());
  std::vector<WriteSite> out;

  auto is_decl_context = [&](std::size_t chain_begin) {
    // `auto& x = ...`, `int x = ...`, `std::vector<int> v = ...` declare, they
    // don't mutate; so does a comma list. A write statement starts after
    // ';', '{', '}', ')' (if/for headers), ':' (case labels) or an operator.
    const std::size_t t = skip_ws_back(code, chain_begin);
    if (t == 0) return false;
    const char c = code[t - 1];
    return ident_char(c) || c == '&' || c == '*' || c == '>' || c == ',';
  };
  auto push_site = [&](std::size_t field_end, const std::string& op) {
    std::vector<std::string> chain;
    const std::size_t start = parse_chain_back(code, field_end, chain);
    if (start == std::string_view::npos || chain.empty()) return;
    if (is_decl_context(start)) return;
    WriteSite site;
    site.pos = field_end - chain.back().size();
    site.chain = std::move(chain);
    site.op = op;
    out.push_back(std::move(site));
  };

  for (std::size_t p = begin; p < end; ++p) {
    const char c = code[p];
    if (c == '=') {
      if (p + 1 < end && code[p + 1] == '=') {
        ++p;
        continue;
      }
      const char prev = p > 0 ? code[p - 1] : ' ';
      if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
      std::size_t field_end;
      std::string op;
      if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
          prev == '%' || prev == '&' || prev == '|' || prev == '^') {
        field_end = skip_ws_back(code, p - 1);
        op = std::string(1, prev) + "=";
      } else {
        field_end = skip_ws_back(code, p);
        op = "=";
      }
      // Skip index groups so `c.sent[i] = v` writes `sent`.
      while (field_end > 0 && code[field_end - 1] == ']') {
        const std::size_t open = matching_bracket_back(code, field_end - 1);
        if (open == std::string_view::npos) break;
        field_end = skip_ws_back(code, open);
      }
      push_site(field_end, op);
      continue;
    }
    if ((c == '+' && p + 1 < end && code[p + 1] == '+') ||
        (c == '-' && p + 1 < end && code[p + 1] == '-')) {
      const std::string op(2, c);
      const std::size_t after = skip_ws(code, p + 2);
      const bool prefix = !(p > 0 && (ident_char(code[p - 1]) ||
                                      code[p - 1] == ')' || code[p - 1] == ']'));
      if (prefix) {
        // ++rx.expected — walk the chain forward.
        std::size_t q = after;
        std::size_t last_end = std::string_view::npos;
        while (q < end && ident_char(code[q])) {
          std::size_t e2 = q;
          while (e2 < end && ident_char(code[e2])) ++e2;
          last_end = e2;
          if (e2 < end && code[e2] == '.') {
            q = e2 + 1;
          } else if (e2 + 1 < end && code[e2] == '-' && code[e2 + 1] == '>') {
            q = e2 + 2;
          } else {
            break;
          }
        }
        if (last_end != std::string_view::npos) push_site(last_end, op);
      } else {
        std::size_t field_end = skip_ws_back(code, p);
        while (field_end > 0 && code[field_end - 1] == ']') {
          const std::size_t open = matching_bracket_back(code, field_end - 1);
          if (open == std::string_view::npos) break;
          field_end = skip_ws_back(code, open);
        }
        if (field_end > 0 && ident_char(code[field_end - 1])) {
          push_site(field_end, op);
        }
      }
      ++p;
      continue;
    }
  }

  // Mutating container-member calls: the receiver's last component is the
  // written field.
  static constexpr const char* kMutators[] = {
      "emplace", "emplace_back", "push_back", "pop_back",  "insert",
      "erase",   "clear",        "resize",    "push_front", "pop_front",
      "assign"};
  for (const char* m : kMutators) {
    std::size_t from = begin;
    while (true) {
      const std::size_t pos = find_member_call(code, m, from);
      if (pos == std::string_view::npos || pos >= end) break;
      from = pos + 1;
      std::size_t r = pos - 1;  // '.' or '->'
      if (code[r] == '>') --r;
      push_site(skip_ws_back(code, r), m);
    }
  }

  std::sort(out.begin(), out.end(),
            [](const WriteSite& a, const WriteSite& b) { return a.pos < b.pos; });
  return out;
}

namespace {

/// Class owning the receiver of an atomic op: `x.load()` resolves `x`'s
/// declared type; a bare `field.load()` belongs to the enclosing method's
/// class. Unresolvable receivers (locals of unknown type) get "".
std::string atomic_receiver_class(const Index& idx, const SourceFile& f,
                                  int file,
                                  const std::vector<std::string>& chain,
                                  std::size_t pos) {
  const int efn = idx.enclosing(file, pos);
  const auto enclosing_cls = [&]() -> std::string {
    if (efn < 0) return "";
    const std::string& qual = idx.funcs[static_cast<std::size_t>(efn)].qual;
    const std::size_t sep = qual.rfind("::");
    if (sep == std::string::npos) return "";
    const std::string scope = qual.substr(0, sep);
    const std::size_t sep2 = scope.rfind("::");
    return sep2 == std::string::npos ? scope : scope.substr(sep2 + 2);
  };
  if (chain.size() >= 2) {
    const std::string& comp = chain[chain.size() - 2];
    if (comp == "this") return enclosing_cls();
    if (const auto it = idx.member_types.find(comp);
        it != idx.member_types.end()) {
      return it->second;
    }
    if (efn >= 0) {
      return local_type_of(idx, f, idx.funcs[static_cast<std::size_t>(efn)],
                           comp, pos);
    }
    return "";
  }
  return enclosing_cls();
}

}  // namespace

std::vector<AtomicDecl> collect_atomic_decls(const Index& idx) {
  std::vector<AtomicDecl> out;
  const Tree& tree = *idx.tree;
  for (std::size_t fi = 0; fi < tree.files.size(); ++fi) {
    const SourceFile& f = tree.files[fi];
    const std::string pp = blank_preprocessor(f.code);
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_ident(pp, "atomic", from, true, false);
      if (pos == std::string::npos) break;
      from = pos + 1;
      std::size_t p = skip_ws(pp, pos + 6);
      if (p >= pp.size() || pp[p] != '<') continue;
      // Matching '>' of the template argument list.
      int depth = 0;
      std::size_t q = p;
      for (; q < pp.size(); ++q) {
        if (pp[q] == '<') {
          ++depth;
        } else if (pp[q] == '>') {
          if (--depth == 0) break;
        } else if (pp[q] == ';') {
          break;  // runaway: a stray comparison, not a template
        }
      }
      if (q >= pp.size() || pp[q] != '>') continue;
      p = skip_ws(pp, q + 1);
      // References / pointers to atomics alias a declaration elsewhere.
      if (p < pp.size() && (pp[p] == '&' || pp[p] == '*')) continue;
      const std::size_t name_begin = p;
      while (p < pp.size() && ident_char(pp[p])) ++p;
      if (p == name_begin ||
          std::isdigit(static_cast<unsigned char>(pp[name_begin]))) {
        continue;
      }
      const std::size_t after = skip_ws(pp, p);
      if (after < pp.size() && pp[after] == '(') continue;  // function decl
      AtomicDecl d;
      d.name = pp.substr(name_begin, p - name_begin);
      d.file = static_cast<int>(fi);
      d.pos = name_begin;
      d.line = line_of(pp, name_begin);
      const ClassRegion* owner = nullptr;
      for (const ClassRegion& region : idx.classes) {
        if (region.file != static_cast<int>(fi) ||
            name_begin <= region.body_begin || name_begin >= region.body_end) {
          continue;
        }
        if (owner == nullptr || region.body_end - region.body_begin <
                                    owner->body_end - owner->body_begin) {
          owner = &region;
        }
      }
      if (owner != nullptr) d.cls = owner->name;
      const std::size_t semi = pp.find(';', name_begin);
      const std::string_view stmt =
          std::string_view(pp).substr(name_begin,
                                      (semi == std::string::npos ? pp.size()
                                                                 : semi) -
                                          name_begin);
      d.annotated = stmt.find("PREMA_GUARDED_BY") != std::string_view::npos ||
                    stmt.find("PREMA_PT_GUARDED_BY") != std::string_view::npos;
      out.push_back(std::move(d));
    }
  }
  return out;
}

std::vector<AtomicOp> collect_atomic_ops(const Index& idx,
                                         const std::set<std::string>& names) {
  static constexpr const char* kCalls[] = {
      "load",      "store",     "exchange", "compare_exchange_weak",
      "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor"};
  std::vector<AtomicOp> out;
  const Tree& tree = *idx.tree;
  for (std::size_t fi = 0; fi < tree.files.size(); ++fi) {
    const SourceFile& f = tree.files[fi];
    const std::string_view code = f.code;
    for (const char* call : kCalls) {
      const std::string_view callee = call;
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_member_call(code, callee, from);
        if (pos == std::string_view::npos) break;
        from = pos + 1;
        std::size_t r = pos - 1;  // '.' or the '>' of '->'
        if (code[r] == '>') --r;
        std::vector<std::string> chain;
        if (parse_chain_back(code, skip_ws_back(code, r), chain) ==
                std::string_view::npos ||
            chain.empty() || names.count(chain.back()) == 0) {
          continue;
        }
        const std::size_t open = skip_ws(code, pos + callee.size());
        if (open >= code.size() || code[open] != '(') continue;
        const std::size_t close = matching_paren(code, open);
        if (close == std::string_view::npos) continue;
        AtomicOp op;
        op.field = chain.back();
        op.op = std::string(callee);
        op.file = static_cast<int>(fi);
        op.pos = pos;
        const auto args = split_args(code.substr(open + 1, close - open - 1));
        op.args = static_cast<int>(args.size());
        for (const std::string& a : args) {
          std::size_t mp = 0;
          while ((mp = a.find("memory_order", mp)) != std::string::npos) {
            std::size_t s = mp + 12;
            if (s < a.size() && a[s] == '_') {
              ++s;
            } else if (s + 1 < a.size() && a[s] == ':' && a[s + 1] == ':') {
              s += 2;
            } else {
              mp = s;
              continue;
            }
            std::size_t e = s;
            while (e < a.size() && ident_char(a[e])) ++e;
            if (e > s) op.orders.push_back(a.substr(s, e - s));
            mp = e;
          }
        }
        op.cls =
            atomic_receiver_class(idx, f, static_cast<int>(fi), chain, pos);
        out.push_back(std::move(op));
      }
    }
    // Operator forms (`flag = true`, `++counter`, `counter += n`) route
    // through the overloaded atomic operators — all implicitly seq_cst.
    for (const WriteSite& site : collect_writes(f, 0, code.size())) {
      if (names.count(site.chain.back()) == 0) continue;
      const bool atomic_form =
          site.op == "=" || site.op == "++" || site.op == "--" ||
          (site.op.size() == 2 && site.op[1] == '=');
      if (!atomic_form) continue;
      AtomicOp op;
      op.field = site.chain.back();
      op.op = site.op;
      op.file = static_cast<int>(fi);
      op.pos = site.pos;
      op.cls = atomic_receiver_class(idx, f, static_cast<int>(fi), site.chain,
                                     site.pos);
      out.push_back(std::move(op));
    }
  }
  std::sort(out.begin(), out.end(), [](const AtomicOp& a, const AtomicOp& b) {
    return a.file != b.file ? a.file < b.file : a.pos < b.pos;
  });
  return out;
}

}  // namespace prema::analyze
