// prema_analyze self-test: every semantic pass must fire on a seeded
// violation assembled from snippets and stay silent on the idiomatic legal
// spelling of the same construct. These are the in-binary counterparts of
// the on-disk fixtures under tools/analyze/fixtures/ — the fixtures exercise
// the CLI end to end, these exercise the passes as library code.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/report.hpp"

namespace prema::analyze {
namespace {

struct TreeCase {
  TreeCase(const char* label_, PassFn pass_,
           std::vector<std::pair<const char*, const char*>> files_,
           const char* hierarchy_, const char* design_, const char* expect_rule_,
           std::vector<std::pair<const char*, const char*>> protocols_ = {})
      : label(label_), pass(pass_), files(std::move(files_)),
        hierarchy(hierarchy_), design(design_), expect_rule(expect_rule_),
        protocols(std::move(protocols_)) {}

  const char* label;
  PassFn pass;
  std::vector<std::pair<const char*, const char*>> files;  ///< rel -> content
  const char* hierarchy;    ///< lock_hierarchy.txt text ("" = none)
  const char* design;       ///< DESIGN.md text ("" = none)
  const char* expect_rule;  ///< nullptr = expect no findings at all
  /// Protocol spec files (name -> text) handed to opts.protocol_specs.
  std::vector<std::pair<const char*, const char*>> protocols;
};

std::vector<TreeCase> tree_cases() {
  std::vector<TreeCase> cases;

  // -- conventions (the migrated prema_lint families; the full snippet set
  //    runs via legacy_self_test, this is just the pass-level wiring) -------
  cases.push_back({"conventions: wall clock in library code", pass_conventions,
                   {{"ilb/balancer.cpp",
                     "auto t = std::chrono::steady_clock::now();"}},
                   "", "", "determinism"});
  cases.push_back({"conventions: wall clock allowed in thread backend",
                   pass_conventions,
                   {{"dmcs/thread_machine.cpp",
                     "using Clock = std::chrono::steady_clock;"}},
                   "", "", nullptr});

  // -- lock-order ----------------------------------------------------------
  const char* kAB = "a a_mu\nb b_mu\n";
  cases.push_back({"lock-order: inversion against the hierarchy",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(b_mu_);\n"
                     "  util::LockGuard g2(a_mu_);\n"
                     "}\n"}},
                   kAB, "", "lock-order"});
  cases.push_back({"lock-order: nesting down the hierarchy is legal",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(a_mu_);\n"
                     "  util::LockGuard g2(b_mu_);\n"
                     "}\n"}},
                   kAB, "", nullptr});
  cases.push_back({"lock-order: re-acquire without recursive marking",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(a_mu_);\n"
                     "  { util::LockGuard g2(a_mu_); }\n"
                     "}\n"}},
                   "a a_mu\n", "", "lock-order"});
  cases.push_back({"lock-order: recursive lock may re-acquire itself",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::RecursiveLock g1(a_mu_);\n"
                     "  { util::RecursiveLock g2(a_mu_); }\n"
                     "}\n"}},
                   "a a_mu recursive\n", "", nullptr});
  cases.push_back({"lock-order: cross-file acquisition cycle", pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() { util::LockGuard g1(a_mu_); "
                     "util::LockGuard g2(b_mu_); }\n"},
                    {"dmcs/y.cpp",
                     "void g() { util::LockGuard g1(b_mu_); "
                     "util::LockGuard g2(a_mu_); }\n"}},
                   "", "", "lock-order"});
  cases.push_back({"lock-order: PREMA_REQUIRES hold creates an edge",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() PREMA_REQUIRES(b_mu_) {\n"
                     "  util::LockGuard g(a_mu_);\n"
                     "}\n"}},
                   kAB, "", "lock-order"});
  cases.push_back({"lock-order: acquisition of an unlisted lock",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() { util::LockGuard g(x_mu_); }\n"}},
                   "a a_mu\n", "", "lock-unlisted"});
  cases.push_back({"lock-order: declared mutex without any annotation",
                   pass_lock_order,
                   {{"dmcs/x.hpp", "class C { util::Mutex mu_; };\n"}},
                   "mu mu\n", "", "lock-unguarded"});
  cases.push_back({"lock-order: GUARDED_BY satisfies coverage",
                   pass_lock_order,
                   {{"dmcs/x.hpp",
                     "class C {\n"
                     "  util::Mutex mu_;\n"
                     "  int state_ PREMA_GUARDED_BY(mu_) = 0;\n"
                     "};\n"}},
                   "mu mu\n", "", nullptr});
  cases.push_back({"lock-order: hierarchy entry missing from DESIGN.md",
                   pass_lock_order,
                   {},
                   "zeta zeta_mu\n", "The design prose names no such lock.",
                   "lock-hierarchy-drift"});

  // -- protocol ------------------------------------------------------------
  const char* kManifest =
      "#define PREMA_WIRE_HANDLERS(X) \\\n"
      "  X(kAOne, \"a.one\")          \\\n"
      "  X(kATwo, \"a.two\")\n";
  const char* kLabels =
      "#define PREMA_WIRE_LABELS(X) \\\n"
      "  X(\"a.one\", \"A one\")     \\\n"
      "  X(\"a.two\", \"A two\")\n";
  cases.push_back({"protocol: complete manifest is clean", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", nullptr});
  cases.push_back({"protocol: manifest entry never registered", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp", "void f(R& r) { r.add(\"a.one\", h); }\n"}},
                   "", "", "protocol-unregistered"});
  cases.push_back({"protocol: registration missing from manifest", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); "
                     "r.add(\"a.three\", h); }\n"}},
                   "", "", "protocol-unknown-handler"});
  cases.push_back({"protocol: double registration", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); "
                     "r.add(\"a.one\", h); }\n"}},
                   "", "", "protocol-duplicate"});
  cases.push_back({"protocol: manifest entry without a trace label",
                   pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp",
                     "#define PREMA_WIRE_LABELS(X) \\\n"
                     "  X(\"a.one\", \"A one\")\n"},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", "protocol-untraced"});
  cases.push_back({"protocol: label for a dropped handler", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp",
                     "#define PREMA_WIRE_LABELS(X) \\\n"
                     "  X(\"a.one\", \"A one\")     \\\n"
                     "  X(\"a.two\", \"A two\")     \\\n"
                     "  X(\"a.gone\", \"A gone\")\n"},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", "protocol-stale-label"});

  // -- serialization -------------------------------------------------------
  const char* kPack =
      "void send(W& w) {\n"
      "  // wire:test.msg pack w\n"
      "  w.put<std::uint32_t>(x);\n"
      "  w.put_bytes(b, n);\n"
      "}\n";
  cases.push_back({"serialization: symmetric pack/unpack is clean",
                   pass_serialization,
                   {{"dmcs/a.cpp", kPack},
                    {"dmcs/b.cpp",
                     "void recv(R& r) {\n"
                     "  // wire:test.msg unpack r\n"
                     "  auto x = r.get<std::uint32_t>();\n"
                     "  r.get_bytes(n);\n"
                     "}\n"}},
                   "", "", nullptr});
  cases.push_back({"serialization: field type diverges", pass_serialization,
                   {{"dmcs/a.cpp", kPack},
                    {"dmcs/b.cpp",
                     "void recv(R& r) {\n"
                     "  // wire:test.msg unpack r\n"
                     "  auto x = r.get<std::uint64_t>();\n"
                     "  r.get_bytes(n);\n"
                     "}\n"}},
                   "", "", "serialization-asymmetry"});
  cases.push_back({"serialization: pack side without unpack",
                   pass_serialization,
                   {{"dmcs/a.cpp", kPack}},
                   "", "", "serialization-unpaired"});
  cases.push_back({"serialization: malformed marker", pass_serialization,
                   {{"dmcs/a.cpp", "// wire:oops\nvoid f() {}\n"}},
                   "", "", "serialization-unpaired"});

  // -- time-domain ---------------------------------------------------------
  cases.push_back({"time-domain: wall value mixed into virtual arithmetic",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) { double d = machine_.elapsed_s() + n->now(); }\n"}},
                   "", "", "time-domain"});
  cases.push_back({"time-domain: taint flows through an assignment",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) {\n"
                     "  double w = machine_.elapsed_s();\n"
                     "  double q = w + n->now();\n"
                     "}\n"}},
                   "", "", "time-domain"});
  cases.push_back({"time-domain: thread backend is the wall domain",
                   pass_time_domain,
                   {{"dmcs/thread_machine.cpp",
                     "void f(N* n) { double d = elapsed_s() + n->now(); }\n"}},
                   "", "", nullptr});
  cases.push_back({"time-domain: pure virtual-time arithmetic is clean",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) { double q = n->now() + 1.0; }\n"}},
                   "", "", nullptr});

  // -- lock-flow -----------------------------------------------------------
  const char* kNb = "t t_mu noblock\n";
  cases.push_back({"lock-flow: send under a noblock lock", pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void f(N* n) {\n"
                     "  util::LockGuard g(t_mu_);\n"
                     "  n->send(1, m);\n"
                     "}\n"}},
                   kNb, "", "lock-flow-blocking"});
  cases.push_back({"lock-flow: send after the guard scope closes",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void f(N* n) {\n"
                     "  { util::LockGuard g(t_mu_); touch(); }\n"
                     "  n->send(1, m);\n"
                     "}\n"}},
                   kNb, "", nullptr});
  cases.push_back({"lock-flow: blocking callee reached through the call graph",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void leaf(N* n) { n->send(1, m); }\n"
                     "void f(N* n) {\n"
                     "  util::LockGuard g(t_mu_);\n"
                     "  leaf(n);\n"
                     "}\n"}},
                   kNb, "", "lock-flow-blocking"});
  cases.push_back({"lock-flow: cv wait may hold its own guard", pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::UniqueLock lk(t_mu_);\n"
                     "  cv_.wait(lk);\n"
                     "}\n"}},
                   kNb, "", nullptr});
  cases.push_back({"lock-flow: call without the callee's REQUIRES lock",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void callee() PREMA_REQUIRES(t_mu_) { touch(); }\n"
                     "void f() { callee(); }\n"}},
                   kNb, "", "lock-flow-requires"});
  cases.push_back({"lock-flow: REQUIRES satisfied by a lexical guard",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void callee() PREMA_REQUIRES(t_mu_) { touch(); }\n"
                     "void f() {\n"
                     "  util::LockGuard g(t_mu_);\n"
                     "  callee();\n"
                     "}\n"}},
                   kNb, "", nullptr});
  cases.push_back({"lock-flow: locked write to an unannotated shared field",
                   pass_lock_flow,
                   {{"dmcs/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() PREMA_REQUIRES(t_mu_) { state_ = 1; }\n"
                     " private:\n"
                     "  util::Mutex t_mu_;\n"
                     "  int state_ = 0;\n"
                     "};\n"}},
                   kNb, "", "lock-flow-unguarded"});
  cases.push_back({"lock-flow: GUARDED_BY covers the locked write",
                   pass_lock_flow,
                   {{"dmcs/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() PREMA_REQUIRES(t_mu_) { state_ = 1; }\n"
                     " private:\n"
                     "  util::Mutex t_mu_;\n"
                     "  int state_ PREMA_GUARDED_BY(t_mu_) = 0;\n"
                     "};\n"}},
                   kNb, "", nullptr});

  // -- protocol-fsm --------------------------------------------------------
  const char* kSpec =
      "protocol demo\n"
      "files dmcs/\n"
      "var st_\n"
      "transition step fn=do_step writes=st_\n";
  cases.push_back({"protocol-fsm: declared transition writes are legal",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { st_ = 1; }\n"}},
                   "", "", nullptr, {{"demo", kSpec}}});
  cases.push_back({"protocol-fsm: undeclared handler mutates protocol state",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp",
                     "void do_step() { st_ = 1; }\n"
                     "void rogue() { st_ = 2; }\n"}},
                   "", "", "protocol-fsm-undeclared", {{"demo", kSpec}}});
  cases.push_back({"protocol-fsm: write outside the transition's grant",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { st_ = 1; extra_ = 2; }\n"}},
                   "", "", "protocol-fsm-extra-write",
                   {{"demo",
                     "protocol demo\n"
                     "files dmcs/\n"
                     "var st_ extra_\n"
                     "transition step fn=do_step writes=st_\n"}}});
  const char* kEmitSpec =
      "protocol demo\n"
      "files dmcs/\n"
      "var st_\n"
      "transition step fn=do_step writes=st_ emits=step_done\n";
  cases.push_back({"protocol-fsm: transition must emit its trace event",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { st_ = 1; }\n"}},
                   "", "", "protocol-fsm-missing-emit", {{"demo", kEmitSpec}}});
  cases.push_back({"protocol-fsm: emitting transition is clean",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp",
                     "void do_step() { st_ = 1; trace_->step_done(1); }\n"}},
                   "", "", nullptr, {{"demo", kEmitSpec}}});
  cases.push_back({"protocol-fsm: transition function missing from the tree",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void other() { touch(); }\n"}},
                   "", "", "protocol-fsm-missing-fn", {{"demo", kSpec}}});
  cases.push_back({"protocol-fsm: malformed spec surfaces as a finding",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { touch(); }\n"}},
                   "", "", "protocol-fsm-spec", {{"demo", "transition step\n"}}});

  // -- sim-purity ----------------------------------------------------------
  cases.push_back({"sim-purity: wall clock inside the sim domain",
                   pass_sim_purity,
                   {{"ilb/x.cpp",
                     "void f() { auto t = std::chrono::steady_clock::now(); }\n"}},
                   "", "", "sim-purity-wallclock"});
  cases.push_back({"sim-purity: thread backend may read the wall clock",
                   pass_sim_purity,
                   {{"dmcs/thread_machine.cpp",
                     "void f() { auto t = std::chrono::steady_clock::now(); }\n"}},
                   "", "", nullptr});
  cases.push_back({"sim-purity: unseeded randomness in the sim domain",
                   pass_sim_purity,
                   {{"mol/x.cpp",
                     "int f() { std::random_device rd; return rd(); }\n"}},
                   "", "", "sim-purity-random"});
  cases.push_back({"sim-purity: iteration over an unordered container",
                   pass_sim_purity,
                   {{"ilb/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() { for (const auto& kv : m_) { use(kv); } }\n"
                     " private:\n"
                     "  std::unordered_map<int, int> m_;\n"
                     "};\n"}},
                   "", "", "sim-purity-unordered"});
  cases.push_back({"sim-purity: ordered container iteration is deterministic",
                   pass_sim_purity,
                   {{"ilb/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() { for (const auto& kv : m_) { use(kv); } }\n"
                     " private:\n"
                     "  std::map<int, int> m_;\n"
                     "};\n"}},
                   "", "", nullptr});

  return cases;
}

bool run_tree_case(const TreeCase& c) {
  Tree tree;
  for (const auto& [rel, content] : c.files) {
    tree.files.push_back(make_file(rel, content));
  }
  Options opts;
  opts.hierarchy_text = c.hierarchy;
  opts.design_text = c.design;
  for (const auto& [name, text] : c.protocols) {
    opts.protocol_specs.emplace_back(name, text);
  }
  Findings out;
  c.pass(tree, opts, out);

  if (c.expect_rule == nullptr) {
    if (out.empty()) return true;
    std::fprintf(stderr, "self-test FAIL: %s (expected clean, got %zu)\n",
                 c.label, out.size());
  } else {
    bool hit = false;
    for (const Finding& f : out) hit = hit || f.rule == c.expect_rule;
    if (hit) return true;
    std::fprintf(stderr, "self-test FAIL: %s (expected rule %s, got %zu other)\n",
                 c.label, c.expect_rule, out.size());
  }
  for (const Finding& f : out) {
    std::fprintf(stderr, "  fired: %s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  return false;
}

/// Protocol-spec parser checks: the grammar round-trips, malformed input
/// fails loudly, and line numbers survive for spec-anchored findings.
int spec_parser_checks(std::size_t& cases_out) {
  int failures = 0;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "self-test FAIL: spec parser: %s\n", what);
    ++failures;
  };

  ++cases_out;
  {
    std::vector<Finding> errs;
    const auto spec = parse_protocol_spec(
        "demo.txt",
        "# comment line\n"
        "protocol demo\n"
        "files dmcs/\n"
        "var a_ b_\n"
        "var c_\n"
        "transition open fn=do_open writes=a_,b_ emits=opened\n"
        "transition close fn=do_close files=mol/ writes=c_  # trailing\n",
        errs);
    if (!spec.has_value() || !errs.empty()) {
      fail("well-formed spec rejected");
    } else if (spec->name != "demo" || spec->files != "dmcs/" ||
               spec->vars != std::vector<std::string>{"a_", "b_", "c_"}) {
      fail("header directives misparsed");
    } else if (spec->transitions.size() != 2 ||
               spec->transitions[0].fn != "do_open" ||
               spec->transitions[0].writes !=
                   std::vector<std::string>{"a_", "b_"} ||
               spec->transitions[0].emits != "opened" ||
               spec->transitions[0].line != 6 ||
               spec->transitions[1].files != "mol/" ||
               spec->transitions[1].emits != "") {
      fail("transition attributes misparsed");
    }
  }

  // Each malformed input must produce a protocol-fsm-spec error and nullopt.
  const char* kBad[] = {
      "transition step fn=f\n",                          // no protocol/files
      "protocol demo\nfiles d/\nwat is this\n",          // unknown directive
      "protocol demo\nfiles d/\ntransition step\n",      // no fn=
      "protocol demo\nfiles d/\ntransition s fn=f writes=ghost_\n",  // undeclared var
  };
  for (const char* text : kBad) {
    ++cases_out;
    std::vector<Finding> errs;
    const auto spec = parse_protocol_spec("bad.txt", text, errs);
    if (spec.has_value() || errs.empty()) {
      std::fprintf(stderr, "self-test FAIL: spec parser accepted:\n%s", text);
      ++failures;
      continue;
    }
    for (const Finding& e : errs) {
      if (e.rule != "protocol-fsm-spec" || e.file != "bad.txt") {
        fail("error finding has wrong rule or file");
        break;
      }
    }
  }
  return failures;
}

/// Full-pipeline time budget: all passes over a synthetic tree an order of
/// magnitude larger than src/ must finish comfortably within CI tolerances,
/// so quadratic blowups in the index or the interprocedural passes fail the
/// suite rather than silently slowing every CI run.
int perf_budget_check(std::size_t& cases_out) {
  ++cases_out;
  Tree tree;
  for (int i = 0; i < 200; ++i) {
    std::string code;
    code += "class C" + std::to_string(i) + " {\n public:\n";
    for (int j = 0; j < 8; ++j) {
      const std::string fn = "f" + std::to_string(i) + "_" + std::to_string(j);
      code += "  void " + fn + "(N* n) PREMA_REQUIRES(mu_) {\n";
      code += "    util::LockGuard g(mu_);\n";
      code += "    v" + std::to_string(j) + "_ = n->now() + " +
              std::to_string(j) + ";\n";
      if (j > 0) {
        code += "    f" + std::to_string(i) + "_" + std::to_string(j - 1) +
                "(n);\n";
      }
      code += "  }\n";
    }
    code += " private:\n  util::Mutex mu_;\n";
    for (int j = 0; j < 8; ++j) {
      code += "  double v" + std::to_string(j) +
              "_ PREMA_GUARDED_BY(mu_) = 0.0;\n";
    }
    code += "};\n";
    tree.files.push_back(
        make_file("gen/c" + std::to_string(i) + ".hpp", std::move(code)));
  }
  Options opts;
  opts.hierarchy_text = "mu mu recursive\n";
  Findings out;
  const auto t0 = std::chrono::steady_clock::now();
  run_all_passes(tree, opts, out);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  constexpr double kBudgetS = 20.0;
  if (elapsed > kBudgetS) {
    std::fprintf(stderr,
                 "self-test FAIL: %zu-file synthetic tree took %.1fs "
                 "(budget %.0fs)\n",
                 tree.files.size(), elapsed, kBudgetS);
    return 1;
  }
  return 0;
}

/// Report-layer checks: baseline round-trip and SARIF shape.
int report_checks(std::size_t& cases_out) {
  int failures = 0;
  const Findings sample = {{"demo-rule", "dmcs/x.cpp", 3, "a \"quoted\" message"}};

  ++cases_out;
  const auto base = parse_baseline(render_baseline(sample));
  if (!subtract_baseline(sample, base).empty()) {
    std::fprintf(stderr, "self-test FAIL: baseline round-trip still reports\n");
    ++failures;
  }
  ++cases_out;
  if (subtract_baseline(sample, parse_baseline("# empty\n")).size() != 1) {
    std::fprintf(stderr, "self-test FAIL: empty baseline suppressed a finding\n");
    ++failures;
  }
  ++cases_out;
  const std::string sarif = render_sarif(sample);
  if (sarif.find("\"ruleId\": \"demo-rule\"") == std::string::npos ||
      sarif.find("\\\"quoted\\\"") == std::string::npos ||
      sarif.find("premaAnalyze/v1") == std::string::npos) {
    std::fprintf(stderr, "self-test FAIL: SARIF output malformed\n%s\n",
                 sarif.c_str());
    ++failures;
  }
  return failures;
}

}  // namespace

int run_self_test() {
  std::size_t cases = 0;
  int failures = 0;
  for (const TreeCase& c : tree_cases()) {
    ++cases;
    if (!run_tree_case(c)) ++failures;
  }
  failures += spec_parser_checks(cases);
  failures += perf_budget_check(cases);
  failures += report_checks(cases);

  // The migrated prema_lint snippets are part of this binary's contract too.
  std::size_t legacy_cases = 0;
  failures += legacy_self_test(legacy_cases);
  cases += legacy_cases;

  if (failures != 0) {
    std::fprintf(stderr, "prema_analyze --self-test: %d failure(s) out of %zu cases\n",
                 failures, cases);
    return 1;
  }
  std::printf("prema_analyze --self-test: OK (%zu cases)\n", cases);
  return 0;
}

}  // namespace prema::analyze
