// prema_analyze self-test: every semantic pass must fire on a seeded
// violation assembled from snippets and stay silent on the idiomatic legal
// spelling of the same construct. These are the in-binary counterparts of
// the on-disk fixtures under tools/analyze/fixtures/ — the fixtures exercise
// the CLI end to end, these exercise the passes as library code.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analyze/engine.hpp"
#include "analyze/report.hpp"

namespace prema::analyze {
namespace {

struct TreeCase {
  TreeCase(const char* label_, PassFn pass_,
           std::vector<std::pair<const char*, const char*>> files_,
           const char* hierarchy_, const char* design_, const char* expect_rule_,
           std::vector<std::pair<const char*, const char*>> protocols_ = {},
           const char* atomics_ = "")
      : label(label_), pass(pass_), files(std::move(files_)),
        hierarchy(hierarchy_), design(design_), expect_rule(expect_rule_),
        protocols(std::move(protocols_)), atomics(atomics_) {}

  const char* label;
  PassFn pass;
  std::vector<std::pair<const char*, const char*>> files;  ///< rel -> content
  const char* hierarchy;    ///< lock_hierarchy.txt text ("" = none)
  const char* design;       ///< DESIGN.md text ("" = none)
  const char* expect_rule;  ///< nullptr = expect no findings at all
  /// Protocol spec files (name -> text) handed to opts.protocol_specs.
  std::vector<std::pair<const char*, const char*>> protocols;
  const char* atomics;  ///< atomics.txt text ("" = pass disabled)
};

std::vector<TreeCase> tree_cases() {
  std::vector<TreeCase> cases;

  // -- conventions (the migrated prema_lint families; the full snippet set
  //    runs via legacy_self_test, this is just the pass-level wiring) -------
  cases.push_back({"conventions: wall clock in library code", pass_conventions,
                   {{"ilb/balancer.cpp",
                     "auto t = std::chrono::steady_clock::now();"}},
                   "", "", "determinism"});
  cases.push_back({"conventions: wall clock allowed in thread backend",
                   pass_conventions,
                   {{"dmcs/thread_machine.cpp",
                     "using Clock = std::chrono::steady_clock;"}},
                   "", "", nullptr});

  // -- lock-order ----------------------------------------------------------
  const char* kAB = "a a_mu\nb b_mu\n";
  cases.push_back({"lock-order: inversion against the hierarchy",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(b_mu_);\n"
                     "  util::LockGuard g2(a_mu_);\n"
                     "}\n"}},
                   kAB, "", "lock-order"});
  cases.push_back({"lock-order: nesting down the hierarchy is legal",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(a_mu_);\n"
                     "  util::LockGuard g2(b_mu_);\n"
                     "}\n"}},
                   kAB, "", nullptr});
  cases.push_back({"lock-order: re-acquire without recursive marking",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(a_mu_);\n"
                     "  { util::LockGuard g2(a_mu_); }\n"
                     "}\n"}},
                   "a a_mu\n", "", "lock-order"});
  cases.push_back({"lock-order: recursive lock may re-acquire itself",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::RecursiveLock g1(a_mu_);\n"
                     "  { util::RecursiveLock g2(a_mu_); }\n"
                     "}\n"}},
                   "a a_mu recursive\n", "", nullptr});
  cases.push_back({"lock-order: cross-file acquisition cycle", pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() { util::LockGuard g1(a_mu_); "
                     "util::LockGuard g2(b_mu_); }\n"},
                    {"dmcs/y.cpp",
                     "void g() { util::LockGuard g1(b_mu_); "
                     "util::LockGuard g2(a_mu_); }\n"}},
                   "", "", "lock-order"});
  cases.push_back({"lock-order: PREMA_REQUIRES hold creates an edge",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() PREMA_REQUIRES(b_mu_) {\n"
                     "  util::LockGuard g(a_mu_);\n"
                     "}\n"}},
                   kAB, "", "lock-order"});
  cases.push_back({"lock-order: acquisition of an unlisted lock",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() { util::LockGuard g(x_mu_); }\n"}},
                   "a a_mu\n", "", "lock-unlisted"});
  cases.push_back({"lock-order: declared mutex without any annotation",
                   pass_lock_order,
                   {{"dmcs/x.hpp", "class C { util::Mutex mu_; };\n"}},
                   "mu mu\n", "", "lock-unguarded"});
  cases.push_back({"lock-order: GUARDED_BY satisfies coverage",
                   pass_lock_order,
                   {{"dmcs/x.hpp",
                     "class C {\n"
                     "  util::Mutex mu_;\n"
                     "  int state_ PREMA_GUARDED_BY(mu_) = 0;\n"
                     "};\n"}},
                   "mu mu\n", "", nullptr});
  cases.push_back({"lock-order: hierarchy entry missing from DESIGN.md",
                   pass_lock_order,
                   {},
                   "zeta zeta_mu\n", "The design prose names no such lock.",
                   "lock-hierarchy-drift"});

  // -- protocol ------------------------------------------------------------
  const char* kManifest =
      "#define PREMA_WIRE_HANDLERS(X) \\\n"
      "  X(kAOne, \"a.one\")          \\\n"
      "  X(kATwo, \"a.two\")\n";
  const char* kLabels =
      "#define PREMA_WIRE_LABELS(X) \\\n"
      "  X(\"a.one\", \"A one\")     \\\n"
      "  X(\"a.two\", \"A two\")\n";
  cases.push_back({"protocol: complete manifest is clean", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", nullptr});
  cases.push_back({"protocol: manifest entry never registered", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp", "void f(R& r) { r.add(\"a.one\", h); }\n"}},
                   "", "", "protocol-unregistered"});
  cases.push_back({"protocol: registration missing from manifest", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); "
                     "r.add(\"a.three\", h); }\n"}},
                   "", "", "protocol-unknown-handler"});
  cases.push_back({"protocol: double registration", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); "
                     "r.add(\"a.one\", h); }\n"}},
                   "", "", "protocol-duplicate"});
  cases.push_back({"protocol: manifest entry without a trace label",
                   pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp",
                     "#define PREMA_WIRE_LABELS(X) \\\n"
                     "  X(\"a.one\", \"A one\")\n"},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", "protocol-untraced"});
  cases.push_back({"protocol: label for a dropped handler", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp",
                     "#define PREMA_WIRE_LABELS(X) \\\n"
                     "  X(\"a.one\", \"A one\")     \\\n"
                     "  X(\"a.two\", \"A two\")     \\\n"
                     "  X(\"a.gone\", \"A gone\")\n"},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", "protocol-stale-label"});

  // -- serialization -------------------------------------------------------
  const char* kPack =
      "void send(W& w) {\n"
      "  // wire:test.msg pack w\n"
      "  w.put<std::uint32_t>(x);\n"
      "  w.put_bytes(b, n);\n"
      "}\n";
  cases.push_back({"serialization: symmetric pack/unpack is clean",
                   pass_serialization,
                   {{"dmcs/a.cpp", kPack},
                    {"dmcs/b.cpp",
                     "void recv(R& r) {\n"
                     "  // wire:test.msg unpack r\n"
                     "  auto x = r.get<std::uint32_t>();\n"
                     "  r.get_bytes(n);\n"
                     "}\n"}},
                   "", "", nullptr});
  cases.push_back({"serialization: field type diverges", pass_serialization,
                   {{"dmcs/a.cpp", kPack},
                    {"dmcs/b.cpp",
                     "void recv(R& r) {\n"
                     "  // wire:test.msg unpack r\n"
                     "  auto x = r.get<std::uint64_t>();\n"
                     "  r.get_bytes(n);\n"
                     "}\n"}},
                   "", "", "serialization-asymmetry"});
  cases.push_back({"serialization: pack side without unpack",
                   pass_serialization,
                   {{"dmcs/a.cpp", kPack}},
                   "", "", "serialization-unpaired"});
  cases.push_back({"serialization: malformed marker", pass_serialization,
                   {{"dmcs/a.cpp", "// wire:oops\nvoid f() {}\n"}},
                   "", "", "serialization-unpaired"});

  // -- time-domain ---------------------------------------------------------
  cases.push_back({"time-domain: wall value mixed into virtual arithmetic",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) { double d = machine_.elapsed_s() + n->now(); }\n"}},
                   "", "", "time-domain"});
  cases.push_back({"time-domain: taint flows through an assignment",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) {\n"
                     "  double w = machine_.elapsed_s();\n"
                     "  double q = w + n->now();\n"
                     "}\n"}},
                   "", "", "time-domain"});
  cases.push_back({"time-domain: thread backend is the wall domain",
                   pass_time_domain,
                   {{"dmcs/thread_machine.cpp",
                     "void f(N* n) { double d = elapsed_s() + n->now(); }\n"}},
                   "", "", nullptr});
  cases.push_back({"time-domain: pure virtual-time arithmetic is clean",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) { double q = n->now() + 1.0; }\n"}},
                   "", "", nullptr});

  // -- lock-flow -----------------------------------------------------------
  const char* kNb = "t t_mu noblock\n";
  cases.push_back({"lock-flow: send under a noblock lock", pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void f(N* n) {\n"
                     "  util::LockGuard g(t_mu_);\n"
                     "  n->send(1, m);\n"
                     "}\n"}},
                   kNb, "", "lock-flow-blocking"});
  cases.push_back({"lock-flow: send after the guard scope closes",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void f(N* n) {\n"
                     "  { util::LockGuard g(t_mu_); touch(); }\n"
                     "  n->send(1, m);\n"
                     "}\n"}},
                   kNb, "", nullptr});
  cases.push_back({"lock-flow: blocking callee reached through the call graph",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void leaf(N* n) { n->send(1, m); }\n"
                     "void f(N* n) {\n"
                     "  util::LockGuard g(t_mu_);\n"
                     "  leaf(n);\n"
                     "}\n"}},
                   kNb, "", "lock-flow-blocking"});
  cases.push_back({"lock-flow: cv wait may hold its own guard", pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::UniqueLock lk(t_mu_);\n"
                     "  cv_.wait(lk);\n"
                     "}\n"}},
                   kNb, "", nullptr});
  cases.push_back({"lock-flow: call without the callee's REQUIRES lock",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void callee() PREMA_REQUIRES(t_mu_) { touch(); }\n"
                     "void f() { callee(); }\n"}},
                   kNb, "", "lock-flow-requires"});
  cases.push_back({"lock-flow: REQUIRES satisfied by a lexical guard",
                   pass_lock_flow,
                   {{"dmcs/x.cpp",
                     "void callee() PREMA_REQUIRES(t_mu_) { touch(); }\n"
                     "void f() {\n"
                     "  util::LockGuard g(t_mu_);\n"
                     "  callee();\n"
                     "}\n"}},
                   kNb, "", nullptr});
  cases.push_back({"lock-flow: locked write to an unannotated shared field",
                   pass_lock_flow,
                   {{"dmcs/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() PREMA_REQUIRES(t_mu_) { state_ = 1; }\n"
                     " private:\n"
                     "  util::Mutex t_mu_;\n"
                     "  int state_ = 0;\n"
                     "};\n"}},
                   kNb, "", "lock-flow-unguarded"});
  cases.push_back({"lock-flow: GUARDED_BY covers the locked write",
                   pass_lock_flow,
                   {{"dmcs/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() PREMA_REQUIRES(t_mu_) { state_ = 1; }\n"
                     " private:\n"
                     "  util::Mutex t_mu_;\n"
                     "  int state_ PREMA_GUARDED_BY(t_mu_) = 0;\n"
                     "};\n"}},
                   kNb, "", nullptr});

  // -- protocol-fsm --------------------------------------------------------
  const char* kSpec =
      "protocol demo\n"
      "files dmcs/\n"
      "var st_\n"
      "transition step fn=do_step writes=st_\n";
  cases.push_back({"protocol-fsm: declared transition writes are legal",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { st_ = 1; }\n"}},
                   "", "", nullptr, {{"demo", kSpec}}});
  cases.push_back({"protocol-fsm: undeclared handler mutates protocol state",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp",
                     "void do_step() { st_ = 1; }\n"
                     "void rogue() { st_ = 2; }\n"}},
                   "", "", "protocol-fsm-undeclared", {{"demo", kSpec}}});
  cases.push_back({"protocol-fsm: write outside the transition's grant",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { st_ = 1; extra_ = 2; }\n"}},
                   "", "", "protocol-fsm-extra-write",
                   {{"demo",
                     "protocol demo\n"
                     "files dmcs/\n"
                     "var st_ extra_\n"
                     "transition step fn=do_step writes=st_\n"}}});
  const char* kEmitSpec =
      "protocol demo\n"
      "files dmcs/\n"
      "var st_\n"
      "transition step fn=do_step writes=st_ emits=step_done\n";
  cases.push_back({"protocol-fsm: transition must emit its trace event",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { st_ = 1; }\n"}},
                   "", "", "protocol-fsm-missing-emit", {{"demo", kEmitSpec}}});
  cases.push_back({"protocol-fsm: emitting transition is clean",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp",
                     "void do_step() { st_ = 1; trace_->step_done(1); }\n"}},
                   "", "", nullptr, {{"demo", kEmitSpec}}});
  cases.push_back({"protocol-fsm: transition function missing from the tree",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void other() { touch(); }\n"}},
                   "", "", "protocol-fsm-missing-fn", {{"demo", kSpec}}});
  cases.push_back({"protocol-fsm: malformed spec surfaces as a finding",
                   pass_protocol_fsm,
                   {{"dmcs/x.cpp", "void do_step() { touch(); }\n"}},
                   "", "", "protocol-fsm-spec", {{"demo", "transition step\n"}}});

  // -- sim-purity ----------------------------------------------------------
  cases.push_back({"sim-purity: wall clock inside the sim domain",
                   pass_sim_purity,
                   {{"ilb/x.cpp",
                     "void f() { auto t = std::chrono::steady_clock::now(); }\n"}},
                   "", "", "sim-purity-wallclock"});
  cases.push_back({"sim-purity: thread backend may read the wall clock",
                   pass_sim_purity,
                   {{"dmcs/thread_machine.cpp",
                     "void f() { auto t = std::chrono::steady_clock::now(); }\n"}},
                   "", "", nullptr});
  cases.push_back({"sim-purity: unseeded randomness in the sim domain",
                   pass_sim_purity,
                   {{"mol/x.cpp",
                     "int f() { std::random_device rd; return rd(); }\n"}},
                   "", "", "sim-purity-random"});
  cases.push_back({"sim-purity: iteration over an unordered container",
                   pass_sim_purity,
                   {{"ilb/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() { for (const auto& kv : m_) { use(kv); } }\n"
                     " private:\n"
                     "  std::unordered_map<int, int> m_;\n"
                     "};\n"}},
                   "", "", "sim-purity-unordered"});
  cases.push_back({"sim-purity: ordered container iteration is deterministic",
                   pass_sim_purity,
                   {{"ilb/x.hpp",
                     "class C {\n"
                     " public:\n"
                     "  void f() { for (const auto& kv : m_) { use(kv); } }\n"
                     " private:\n"
                     "  std::map<int, int> m_;\n"
                     "};\n"}},
                   "", "", nullptr});

  // -- atomic-discipline ----------------------------------------------------
  const char* kGate =
      "class Gate {\n"
      " public:\n"
      "  void open() { flag_.store(true, std::memory_order_release); }\n"
      "  bool is_open() const {\n"
      "    return flag_.load(std::memory_order_acquire);\n"
      "  }\n"
      " private:\n"
      "  std::atomic<bool> flag_{false};\n"
      "};\n";
  const char* kGateManifest =
      "flag_ role=flag orders=release,acquire class=Gate\n";
  cases.push_back({"atomic-discipline: registered flag is clean",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp", kGate}},
                   "", "", nullptr, {}, kGateManifest});
  cases.push_back({"atomic-discipline: atomic missing from the manifest",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp", kGate}},
                   "", "", "atomic-unregistered", {},
                   "# reviewed: nothing registered yet\n"});
  cases.push_back({"atomic-discipline: allow-comment acknowledges a decl",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     "  // analyze:allow(atomic-unregistered)\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", nullptr, {}, "# reviewed: nothing registered yet\n"});
  cases.push_back({"atomic-discipline: store with no order is implicit seq_cst",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  void open() { flag_.store(true); }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", "atomic-implicit-order", {}, kGateManifest});
  cases.push_back({"atomic-discipline: plain `=` routes through seq_cst store",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  void open() { flag_ = true; }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", "atomic-implicit-order", {}, kGateManifest});
  cases.push_back({"atomic-discipline: order outside the allowed set",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  bool peek() const {\n"
                     "    return flag_.load(std::memory_order_relaxed);\n"
                     "  }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", "atomic-order", {}, kGateManifest});
  cases.push_back({"atomic-discipline: RMW on a flag role",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  bool claim() {\n"
                     "    return flag_.exchange(true, std::memory_order_acq_rel);\n"
                     "  }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", "atomic-rmw", {},
                   "flag_ role=flag orders=release,acquire,acq_rel class=Gate\n"});
  const char* kTally =
      "class Tally {\n"
      " public:\n"
      "  void hit() { n_++; }\n"
      "  void add(long k) { n_.fetch_add(k, std::memory_order_relaxed); }\n"
      "  long total() const { return n_.load(std::memory_order_relaxed); }\n"
      " private:\n"
      "  std::atomic<long> n_{0};\n"
      "};\n";
  cases.push_back({"atomic-discipline: counter may use operator and RMW forms",
                   pass_atomic_discipline,
                   {{"dmcs/tally.hpp", kTally}},
                   "", "", nullptr, {},
                   "n_ role=counter orders=relaxed class=Tally\n"});
  cases.push_back({"atomic-discipline: atomic also GUARDED_BY a mutex",
                   pass_atomic_discipline,
                   {{"dmcs/both.hpp",
                     "class Both {\n"
                     " private:\n"
                     "  util::Mutex mu_;\n"
                     "  std::atomic<int> n_ PREMA_GUARDED_BY(mu_){0};\n"
                     "};\n"}},
                   "", "", "atomic-guarded", {},
                   "n_ role=counter orders=seq_cst class=Both\n"});
  cases.push_back({"atomic-discipline: manifest entry matching no declaration",
                   pass_atomic_discipline,
                   {{"dmcs/x.cpp", "void f() { touch(); }\n"}},
                   "", "", "atomic-stale", {},
                   "ghost_ role=flag orders=seq_cst\n"});
  cases.push_back({"atomic-discipline: malformed manifest surfaces as finding",
                   pass_atomic_discipline,
                   {{"dmcs/gate.hpp", kGate}},
                   "", "", "atomic-manifest", {},
                   "flag_ role=banana orders=seq_cst class=Gate\n"});

  // -- release-acquire ------------------------------------------------------
  cases.push_back({"release-acquire: store + acquire load pair up",
                   pass_release_acquire,
                   {{"dmcs/gate.hpp", kGate}},
                   "", "", nullptr, {}, kGateManifest});
  cases.push_back({"release-acquire: release store nobody loads",
                   pass_release_acquire,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  void open() { flag_.store(true, std::memory_order_release); }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", "release-acquire-unpaired-store", {}, kGateManifest});
  cases.push_back({"release-acquire: acquire load nobody stores",
                   pass_release_acquire,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  bool is_open() const {\n"
                     "    return flag_.load(std::memory_order_acquire);\n"
                     "  }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", "release-acquire-unpaired-load", {}, kGateManifest});
  cases.push_back({"release-acquire: an RMW counts as the acquire side",
                   pass_release_acquire,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  void open() { flag_.store(true, std::memory_order_release); }\n"
                     "  bool take() {\n"
                     "    return flag_.exchange(false, std::memory_order_acq_rel);\n"
                     "  }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", nullptr, {},
                   "flag_ role=flag orders=release,acquire,acq_rel class=Gate\n"});
  cases.push_back({"release-acquire: implicit seq_cst load still observes",
                   pass_release_acquire,
                   {{"dmcs/gate.hpp",
                     "class Gate {\n"
                     " public:\n"
                     "  void open() { flag_.store(true, std::memory_order_release); }\n"
                     "  bool peek() const { return flag_.load(); }\n"
                     " private:\n"
                     "  std::atomic<bool> flag_{false};\n"
                     "};\n"}},
                   "", "", nullptr, {}, kGateManifest});

  // -- mixed-access ---------------------------------------------------------
  cases.push_back({"mixed-access: locked write, unlocked read in the closure",
                   pass_mixed_access,
                   {{"dmcs/pump.hpp",
                     "class Pump {\n"
                     " public:\n"
                     "  void worker_loop() {\n"
                     "    bump();\n"
                     "    show();\n"
                     "  }\n"
                     "  void bump() PREMA_REQUIRES(mu_) { n_ = n_ + 1; }\n"
                     "  void show() { use(n_); }\n"
                     " private:\n"
                     "  util::Mutex mu_;\n"
                     "  int n_ = 0;\n"
                     "};\n"}},
                   "", "", "mixed-access"});
  cases.push_back({"mixed-access: REQUIRES on the reader is direct evidence",
                   pass_mixed_access,
                   {{"dmcs/pump.hpp",
                     "class Pump {\n"
                     " public:\n"
                     "  void worker_loop() {\n"
                     "    bump();\n"
                     "    show();\n"
                     "  }\n"
                     "  void bump() PREMA_REQUIRES(mu_) { n_ = n_ + 1; }\n"
                     "  void show() PREMA_REQUIRES(mu_) { use(n_); }\n"
                     " private:\n"
                     "  util::Mutex mu_;\n"
                     "  int n_ = 0;\n"
                     "};\n"}},
                   "", "", nullptr});
  cases.push_back({"mixed-access: a lexical guard covers the read",
                   pass_mixed_access,
                   {{"dmcs/pump.hpp",
                     "class Pump {\n"
                     " public:\n"
                     "  void worker_loop() {\n"
                     "    bump();\n"
                     "    show();\n"
                     "  }\n"
                     "  void bump() PREMA_REQUIRES(mu_) { n_ = n_ + 1; }\n"
                     "  void show() {\n"
                     "    util::LockGuard g(mu_);\n"
                     "    use(n_);\n"
                     "  }\n"
                     " private:\n"
                     "  util::Mutex mu_;\n"
                     "  int n_ = 0;\n"
                     "};\n"}},
                   "", "", nullptr});
  cases.push_back({"mixed-access: no thread closure, no second thread",
                   pass_mixed_access,
                   {{"dmcs/pump.hpp",
                     "class Pump {\n"
                     " public:\n"
                     "  void run() {\n"
                     "    bump();\n"
                     "    show();\n"
                     "  }\n"
                     "  void bump() PREMA_REQUIRES(mu_) { n_ = n_ + 1; }\n"
                     "  void show() { use(n_); }\n"
                     " private:\n"
                     "  util::Mutex mu_;\n"
                     "  int n_ = 0;\n"
                     "};\n"}},
                   "", "", nullptr});
  cases.push_back({"mixed-access: stamping a value object is per-object state",
                   pass_mixed_access,
                   {{"dmcs/pump.hpp",
                     "class Msg {\n"
                     " public:\n"
                     "  int seq = 0;\n"
                     "};\n"
                     "class Pump {\n"
                     " public:\n"
                     "  void worker_loop() {\n"
                     "    Msg m;\n"
                     "    stamp(m);\n"
                     "    look(m);\n"
                     "  }\n"
                     "  void stamp(Msg& m) PREMA_REQUIRES(mu_) { m.seq = 1; }\n"
                     "  void look(Msg& m) { use(m.seq); }\n"
                     " private:\n"
                     "  util::Mutex mu_;\n"
                     "};\n"}},
                   "", "", nullptr});
  cases.push_back({"mixed-access: allow-comment marks a reviewed read",
                   pass_mixed_access,
                   {{"dmcs/pump.hpp",
                     "class Pump {\n"
                     " public:\n"
                     "  void worker_loop() {\n"
                     "    bump();\n"
                     "    show();\n"
                     "  }\n"
                     "  void bump() PREMA_REQUIRES(mu_) { n_ = n_ + 1; }\n"
                     "  void show() {\n"
                     "    // analyze:allow(mixed-access)\n"
                     "    use(n_);\n"
                     "  }\n"
                     " private:\n"
                     "  util::Mutex mu_;\n"
                     "  int n_ = 0;\n"
                     "};\n"}},
                   "", "", nullptr});

  return cases;
}

bool run_tree_case(const TreeCase& c) {
  Tree tree;
  for (const auto& [rel, content] : c.files) {
    tree.files.push_back(make_file(rel, content));
  }
  Options opts;
  opts.hierarchy_text = c.hierarchy;
  opts.design_text = c.design;
  opts.atomics_text = c.atomics;
  for (const auto& [name, text] : c.protocols) {
    opts.protocol_specs.emplace_back(name, text);
  }
  Findings out;
  c.pass(tree, opts, out);

  if (c.expect_rule == nullptr) {
    if (out.empty()) return true;
    std::fprintf(stderr, "self-test FAIL: %s (expected clean, got %zu)\n",
                 c.label, out.size());
  } else {
    bool hit = false;
    for (const Finding& f : out) hit = hit || f.rule == c.expect_rule;
    if (hit) return true;
    std::fprintf(stderr, "self-test FAIL: %s (expected rule %s, got %zu other)\n",
                 c.label, c.expect_rule, out.size());
  }
  for (const Finding& f : out) {
    std::fprintf(stderr, "  fired: %s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  return false;
}

/// Protocol-spec parser checks: the grammar round-trips, malformed input
/// fails loudly, and line numbers survive for spec-anchored findings.
int spec_parser_checks(std::size_t& cases_out) {
  int failures = 0;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "self-test FAIL: spec parser: %s\n", what);
    ++failures;
  };

  ++cases_out;
  {
    std::vector<Finding> errs;
    const auto spec = parse_protocol_spec(
        "demo.txt",
        "# comment line\n"
        "protocol demo\n"
        "files dmcs/\n"
        "var a_ b_\n"
        "var c_\n"
        "transition open fn=do_open writes=a_,b_ emits=opened\n"
        "transition close fn=do_close files=mol/ writes=c_  # trailing\n",
        errs);
    if (!spec.has_value() || !errs.empty()) {
      fail("well-formed spec rejected");
    } else if (spec->name != "demo" || spec->files != "dmcs/" ||
               spec->vars != std::vector<std::string>{"a_", "b_", "c_"}) {
      fail("header directives misparsed");
    } else if (spec->transitions.size() != 2 ||
               spec->transitions[0].fn != "do_open" ||
               spec->transitions[0].writes !=
                   std::vector<std::string>{"a_", "b_"} ||
               spec->transitions[0].emits != "opened" ||
               spec->transitions[0].line != 6 ||
               spec->transitions[1].files != "mol/" ||
               spec->transitions[1].emits != "") {
      fail("transition attributes misparsed");
    }
  }

  // Each malformed input must produce a protocol-fsm-spec error and nullopt.
  const char* kBad[] = {
      "transition step fn=f\n",                          // no protocol/files
      "protocol demo\nfiles d/\nwat is this\n",          // unknown directive
      "protocol demo\nfiles d/\ntransition step\n",      // no fn=
      "protocol demo\nfiles d/\ntransition s fn=f writes=ghost_\n",  // undeclared var
  };
  for (const char* text : kBad) {
    ++cases_out;
    std::vector<Finding> errs;
    const auto spec = parse_protocol_spec("bad.txt", text, errs);
    if (spec.has_value() || errs.empty()) {
      std::fprintf(stderr, "self-test FAIL: spec parser accepted:\n%s", text);
      ++failures;
      continue;
    }
    for (const Finding& e : errs) {
      if (e.rule != "protocol-fsm-spec" || e.file != "bad.txt") {
        fail("error finding has wrong rule or file");
        break;
      }
    }
  }
  return failures;
}

/// Manifest parser checks: the atomics.txt grammar round-trips, every
/// malformed spelling fails loudly with an atomic-manifest finding, and line
/// numbers survive for the stale-entry and error anchors.
int atomics_manifest_checks(std::size_t& cases_out) {
  int failures = 0;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "self-test FAIL: atomics manifest: %s\n", what);
    ++failures;
  };

  ++cases_out;
  {
    std::vector<Finding> errs;
    const std::vector<AtomicEntry> entries = parse_atomics_manifest(
        "atomics.txt",
        "# reviewed inventory\n"
        "done_ role=flag orders=release,acquire class=TM file=dmcs/\n"
        "hits role=counter orders=relaxed,seq_cst  # trailing comment\n",
        errs);
    if (!errs.empty() || entries.size() != 2) {
      fail("well-formed manifest rejected");
    } else if (entries[0].name != "done_" || entries[0].role != "flag" ||
               entries[0].orders != std::set<std::string>{"acquire",
                                                          "release"} ||
               entries[0].cls != "TM" || entries[0].path != "dmcs/" ||
               entries[0].line != 2) {
      fail("fully-qualified entry misparsed");
    } else if (entries[1].name != "hits" || entries[1].role != "counter" ||
               entries[1].orders != std::set<std::string>{"relaxed",
                                                          "seq_cst"} ||
               !entries[1].cls.empty() || !entries[1].path.empty() ||
               entries[1].line != 3) {
      fail("minimal entry misparsed");
    }
  }

  // Each malformed input must produce at least one atomic-manifest error
  // anchored in the manifest itself.
  const char* kBad[] = {
      "done_ orders=seq_cst\n",                     // no role=
      "done_ role=banana orders=seq_cst\n",         // unknown role
      "done_ role=flag orders=wibbly\n",            // unknown memory order
      "done_ role=flag orders=seq_cst reviewed\n",  // attr is not key=value
      "done_ role=flag orders=seq_cst\n"
      "done_ role=flag orders=seq_cst\n",           // duplicate entry
  };
  for (const char* text : kBad) {
    ++cases_out;
    std::vector<Finding> errs;
    parse_atomics_manifest("atomics.txt", text, errs);
    if (errs.empty()) {
      std::fprintf(stderr, "self-test FAIL: manifest parser accepted:\n%s",
                   text);
      ++failures;
      continue;
    }
    for (const Finding& e : errs) {
      if (e.rule != "atomic-manifest" || e.file != "atomics.txt" ||
          e.line < 1) {
        fail("error finding has wrong rule, file or line");
        break;
      }
    }
  }
  return failures;
}

/// The shared synthetic workload: `nfiles` generated classes, `nfuncs`
/// locked methods and as many guarded fields each, with an intra-class call
/// chain so the interprocedural passes have real work per file.
Tree synthetic_tree(int nfiles, int nfuncs = 8) {
  Tree tree;
  for (int i = 0; i < nfiles; ++i) {
    std::string code;
    code += "class C" + std::to_string(i) + " {\n public:\n";
    for (int j = 0; j < nfuncs; ++j) {
      const std::string fn = "f" + std::to_string(i) + "_" + std::to_string(j);
      code += "  void " + fn + "(N* n) PREMA_REQUIRES(mu_) {\n";
      code += "    util::LockGuard g(mu_);\n";
      code += "    v" + std::to_string(j) + "_ = n->now() + " +
              std::to_string(j) + ";\n";
      if (j > 0) {
        code += "    f" + std::to_string(i) + "_" + std::to_string(j - 1) +
                "(n);\n";
      }
      code += "  }\n";
    }
    code += " private:\n  util::Mutex mu_;\n";
    for (int j = 0; j < nfuncs; ++j) {
      code += "  double v" + std::to_string(j) +
              "_ PREMA_GUARDED_BY(mu_) = 0.0;\n";
    }
    code += "};\n";
    tree.files.push_back(
        make_file("gen/c" + std::to_string(i) + ".hpp", std::move(code)));
  }
  return tree;
}

/// Full-pipeline time budget: all passes over a synthetic tree an order of
/// magnitude larger than src/ must finish comfortably within CI tolerances,
/// so quadratic blowups in the index or the interprocedural passes fail the
/// suite rather than silently slowing every CI run.
int perf_budget_check(std::size_t& cases_out) {
  ++cases_out;
  const Tree tree = synthetic_tree(200);
  Options opts;
  opts.hierarchy_text = "mu mu recursive\n";
  Findings out;
  const auto t0 = std::chrono::steady_clock::now();
  run_all_passes(tree, opts, out);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  constexpr double kBudgetS = 20.0;
  if (elapsed > kBudgetS) {
    std::fprintf(stderr,
                 "self-test FAIL: %zu-file synthetic tree took %.1fs "
                 "(budget %.0fs)\n",
                 tree.files.size(), elapsed, kBudgetS);
    return 1;
  }
  return 0;
}

/// Engine checks: parallel runs are byte-identical to serial ones, the
/// on-disk cache answers unchanged work and re-runs touched work, and the
/// thread pool actually buys wall time on the per-file shards.
int engine_checks(std::size_t& cases_out) {
  int failures = 0;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "self-test FAIL: engine: %s\n", what);
    ++failures;
  };
  const auto same = [](const Findings& a, const Findings& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].rule != b[i].rule || a[i].file != b[i].file ||
          a[i].line != b[i].line || a[i].message != b[i].message) {
        return false;
      }
    }
    return true;
  };

  // A tree that fires both per-file findings (conventions: determinism) and
  // whole-tree findings (sim-purity: wallclock) across many files, so slot
  // ordering and the cache have something real to preserve.
  const auto seeded_file = [](int i, const char* suffix) {
    return "void f" + std::to_string(i) + "() {\n" +
           "  auto t = std::chrono::steady_clock::now();\n" + "}\n" + suffix;
  };
  Tree tree;
  for (int i = 0; i < 12; ++i) {
    tree.files.push_back(
        make_file("ilb/f" + std::to_string(i) + ".cpp", seeded_file(i, "")));
  }
  const Options opts;

  ++cases_out;
  {
    Findings serial, parallel;
    EngineOptions e1;
    e1.jobs = 1;
    EngineOptions e4;
    e4.jobs = 4;
    run_engine(tree, opts, e1, serial);
    run_engine(tree, opts, e4, parallel);
    if (serial.empty()) fail("seeded tree produced no findings");
    if (!same(serial, parallel)) {
      fail("--jobs 4 output diverges from --jobs 1");
    }
  }

  ++cases_out;
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path dir =
        fs::temp_directory_path(ec) / "prema_analyze_selftest_cache";
    fs::remove_all(dir, ec);
    EngineOptions eng;
    eng.jobs = 1;
    eng.cache_dir = dir.string();
    Findings cold, warm, touched;
    EngineStats s_cold, s_warm, s_touch;
    run_engine(tree, opts, eng, cold, &s_cold);
    run_engine(tree, opts, eng, warm, &s_warm);
    if (s_cold.cache_hits != 0 || s_cold.cache_misses == 0) {
      fail("cold run should miss on every task");
    }
    if (s_warm.cache_misses != 0 || s_warm.cache_hits != s_cold.cache_misses) {
      fail("warm run should answer every task from the cache");
    }
    if (!same(cold, warm)) fail("cached findings diverge from computed ones");

    // Touch one file: per-file work for the other files must still hit,
    // per-file work for the touched file and the tree-keyed passes must not.
    Tree tree2 = tree;
    tree2.files[0] = make_file("ilb/f0.cpp", seeded_file(0, "// touched\n"));
    run_engine(tree2, opts, eng, touched, &s_touch);
    if (s_touch.cache_hits == 0 || s_touch.cache_misses == 0) {
      fail("touching one file should re-run some tasks and reuse the rest");
    }
    if (!same(cold, touched)) {
      fail("an appended comment changed the findings");
    }
    fs::remove_all(dir, ec);
  }

  // Scaling: the per-file shards (conventions + time-domain over the
  // 200-class synthetic tree) must run at least 2x faster on the pool than
  // single-threaded. Asserted on the engine's own wall_ms, warm-up plus
  // best-of-3, and skipped below four cores where the headroom isn't there.
  ++cases_out;
  {
    const unsigned hw = std::thread::hardware_concurrency();
    const Tree big = synthetic_tree(200, 128);
    const auto best_of_3 = [&](int jobs) {
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        EngineOptions eng;
        eng.jobs = jobs;
        eng.passes = {"conventions", "time-domain"};
        Findings out;
        EngineStats stats;
        run_engine(big, opts, eng, out, &stats);
        if (rep == 0 || stats.wall_ms < best) best = stats.wall_ms;
      }
      return best;
    };
    best_of_3(1);  // warm-up: fault in the tree and the allocator
    const double serial_ms = best_of_3(1);
    if (hw < 4) {
      std::printf(
          "prema_analyze --self-test: engine speedup SKIP "
          "(%u core(s), need 4; jobs 1: %.1f ms)\n",
          hw, serial_ms);
    } else {
      const double pool_ms = best_of_3(static_cast<int>(hw));
      std::printf(
          "prema_analyze --self-test: engine speedup %.1fx "
          "(jobs 1: %.1f ms, jobs %u: %.1f ms)\n",
          pool_ms > 0 ? serial_ms / pool_ms : 0.0, serial_ms, hw, pool_ms);
      if (pool_ms * 2.0 > serial_ms) {
        fail("per-file shards under 2x speedup on the thread pool");
      }
    }
  }
  return failures;
}

/// Report-layer checks: baseline round-trip and SARIF shape.
int report_checks(std::size_t& cases_out) {
  int failures = 0;
  const Findings sample = {{"demo-rule", "dmcs/x.cpp", 3, "a \"quoted\" message"}};

  ++cases_out;
  const auto base = parse_baseline(render_baseline(sample));
  if (!subtract_baseline(sample, base).empty()) {
    std::fprintf(stderr, "self-test FAIL: baseline round-trip still reports\n");
    ++failures;
  }
  ++cases_out;
  if (subtract_baseline(sample, parse_baseline("# empty\n")).size() != 1) {
    std::fprintf(stderr, "self-test FAIL: empty baseline suppressed a finding\n");
    ++failures;
  }
  ++cases_out;
  const std::string sarif = render_sarif(sample);
  if (sarif.find("\"ruleId\": \"demo-rule\"") == std::string::npos ||
      sarif.find("\\\"quoted\\\"") == std::string::npos ||
      sarif.find("premaAnalyze/v1") == std::string::npos) {
    std::fprintf(stderr, "self-test FAIL: SARIF output malformed\n%s\n",
                 sarif.c_str());
    ++failures;
  }
  return failures;
}

}  // namespace

int run_self_test() {
  std::size_t cases = 0;
  int failures = 0;
  for (const TreeCase& c : tree_cases()) {
    ++cases;
    if (!run_tree_case(c)) ++failures;
  }
  failures += spec_parser_checks(cases);
  failures += atomics_manifest_checks(cases);
  failures += perf_budget_check(cases);
  failures += engine_checks(cases);
  failures += report_checks(cases);

  // The migrated prema_lint snippets are part of this binary's contract too.
  std::size_t legacy_cases = 0;
  failures += legacy_self_test(legacy_cases);
  cases += legacy_cases;

  if (failures != 0) {
    std::fprintf(stderr, "prema_analyze --self-test: %d failure(s) out of %zu cases\n",
                 failures, cases);
    return 1;
  }
  std::printf("prema_analyze --self-test: OK (%zu cases)\n", cases);
  return 0;
}

}  // namespace prema::analyze
