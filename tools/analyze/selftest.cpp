// prema_analyze self-test: every semantic pass must fire on a seeded
// violation assembled from snippets and stay silent on the idiomatic legal
// spelling of the same construct. These are the in-binary counterparts of
// the on-disk fixtures under tools/analyze/fixtures/ — the fixtures exercise
// the CLI end to end, these exercise the passes as library code.

#include <cstdio>
#include <string>
#include <vector>

#include "analyze/report.hpp"

namespace prema::analyze {
namespace {

struct TreeCase {
  const char* label;
  PassFn pass;
  std::vector<std::pair<const char*, const char*>> files;  ///< rel -> content
  const char* hierarchy;    ///< lock_hierarchy.txt text ("" = none)
  const char* design;       ///< DESIGN.md text ("" = none)
  const char* expect_rule;  ///< nullptr = expect no findings at all
};

std::vector<TreeCase> tree_cases() {
  std::vector<TreeCase> cases;

  // -- conventions (the migrated prema_lint families; the full snippet set
  //    runs via legacy_self_test, this is just the pass-level wiring) -------
  cases.push_back({"conventions: wall clock in library code", pass_conventions,
                   {{"ilb/balancer.cpp",
                     "auto t = std::chrono::steady_clock::now();"}},
                   "", "", "determinism"});
  cases.push_back({"conventions: wall clock allowed in thread backend",
                   pass_conventions,
                   {{"dmcs/thread_machine.cpp",
                     "using Clock = std::chrono::steady_clock;"}},
                   "", "", nullptr});

  // -- lock-order ----------------------------------------------------------
  const char* kAB = "a a_mu\nb b_mu\n";
  cases.push_back({"lock-order: inversion against the hierarchy",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(b_mu_);\n"
                     "  util::LockGuard g2(a_mu_);\n"
                     "}\n"}},
                   kAB, "", "lock-order"});
  cases.push_back({"lock-order: nesting down the hierarchy is legal",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(a_mu_);\n"
                     "  util::LockGuard g2(b_mu_);\n"
                     "}\n"}},
                   kAB, "", nullptr});
  cases.push_back({"lock-order: re-acquire without recursive marking",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::LockGuard g1(a_mu_);\n"
                     "  { util::LockGuard g2(a_mu_); }\n"
                     "}\n"}},
                   "a a_mu\n", "", "lock-order"});
  cases.push_back({"lock-order: recursive lock may re-acquire itself",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() {\n"
                     "  util::RecursiveLock g1(a_mu_);\n"
                     "  { util::RecursiveLock g2(a_mu_); }\n"
                     "}\n"}},
                   "a a_mu recursive\n", "", nullptr});
  cases.push_back({"lock-order: cross-file acquisition cycle", pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() { util::LockGuard g1(a_mu_); "
                     "util::LockGuard g2(b_mu_); }\n"},
                    {"dmcs/y.cpp",
                     "void g() { util::LockGuard g1(b_mu_); "
                     "util::LockGuard g2(a_mu_); }\n"}},
                   "", "", "lock-order"});
  cases.push_back({"lock-order: PREMA_REQUIRES hold creates an edge",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() PREMA_REQUIRES(b_mu_) {\n"
                     "  util::LockGuard g(a_mu_);\n"
                     "}\n"}},
                   kAB, "", "lock-order"});
  cases.push_back({"lock-order: acquisition of an unlisted lock",
                   pass_lock_order,
                   {{"dmcs/x.cpp",
                     "void f() { util::LockGuard g(x_mu_); }\n"}},
                   "a a_mu\n", "", "lock-unlisted"});
  cases.push_back({"lock-order: declared mutex without any annotation",
                   pass_lock_order,
                   {{"dmcs/x.hpp", "class C { util::Mutex mu_; };\n"}},
                   "mu mu\n", "", "lock-unguarded"});
  cases.push_back({"lock-order: GUARDED_BY satisfies coverage",
                   pass_lock_order,
                   {{"dmcs/x.hpp",
                     "class C {\n"
                     "  util::Mutex mu_;\n"
                     "  int state_ PREMA_GUARDED_BY(mu_) = 0;\n"
                     "};\n"}},
                   "mu mu\n", "", nullptr});
  cases.push_back({"lock-order: hierarchy entry missing from DESIGN.md",
                   pass_lock_order,
                   {},
                   "zeta zeta_mu\n", "The design prose names no such lock.",
                   "lock-hierarchy-drift"});

  // -- protocol ------------------------------------------------------------
  const char* kManifest =
      "#define PREMA_WIRE_HANDLERS(X) \\\n"
      "  X(kAOne, \"a.one\")          \\\n"
      "  X(kATwo, \"a.two\")\n";
  const char* kLabels =
      "#define PREMA_WIRE_LABELS(X) \\\n"
      "  X(\"a.one\", \"A one\")     \\\n"
      "  X(\"a.two\", \"A two\")\n";
  cases.push_back({"protocol: complete manifest is clean", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", nullptr});
  cases.push_back({"protocol: manifest entry never registered", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp", "void f(R& r) { r.add(\"a.one\", h); }\n"}},
                   "", "", "protocol-unregistered"});
  cases.push_back({"protocol: registration missing from manifest", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); "
                     "r.add(\"a.three\", h); }\n"}},
                   "", "", "protocol-unknown-handler"});
  cases.push_back({"protocol: double registration", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp", kLabels},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); "
                     "r.add(\"a.one\", h); }\n"}},
                   "", "", "protocol-duplicate"});
  cases.push_back({"protocol: manifest entry without a trace label",
                   pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp",
                     "#define PREMA_WIRE_LABELS(X) \\\n"
                     "  X(\"a.one\", \"A one\")\n"},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", "protocol-untraced"});
  cases.push_back({"protocol: label for a dropped handler", pass_protocol,
                   {{"dmcs/message.hpp", kManifest},
                    {"trace/wire_names.hpp",
                     "#define PREMA_WIRE_LABELS(X) \\\n"
                     "  X(\"a.one\", \"A one\")     \\\n"
                     "  X(\"a.two\", \"A two\")     \\\n"
                     "  X(\"a.gone\", \"A gone\")\n"},
                    {"dmcs/reg.cpp",
                     "void f(R& r) { r.add(\"a.one\", h); r.add(\"a.two\", h); }\n"}},
                   "", "", "protocol-stale-label"});

  // -- serialization -------------------------------------------------------
  const char* kPack =
      "void send(W& w) {\n"
      "  // wire:test.msg pack w\n"
      "  w.put<std::uint32_t>(x);\n"
      "  w.put_bytes(b, n);\n"
      "}\n";
  cases.push_back({"serialization: symmetric pack/unpack is clean",
                   pass_serialization,
                   {{"dmcs/a.cpp", kPack},
                    {"dmcs/b.cpp",
                     "void recv(R& r) {\n"
                     "  // wire:test.msg unpack r\n"
                     "  auto x = r.get<std::uint32_t>();\n"
                     "  r.get_bytes(n);\n"
                     "}\n"}},
                   "", "", nullptr});
  cases.push_back({"serialization: field type diverges", pass_serialization,
                   {{"dmcs/a.cpp", kPack},
                    {"dmcs/b.cpp",
                     "void recv(R& r) {\n"
                     "  // wire:test.msg unpack r\n"
                     "  auto x = r.get<std::uint64_t>();\n"
                     "  r.get_bytes(n);\n"
                     "}\n"}},
                   "", "", "serialization-asymmetry"});
  cases.push_back({"serialization: pack side without unpack",
                   pass_serialization,
                   {{"dmcs/a.cpp", kPack}},
                   "", "", "serialization-unpaired"});
  cases.push_back({"serialization: malformed marker", pass_serialization,
                   {{"dmcs/a.cpp", "// wire:oops\nvoid f() {}\n"}},
                   "", "", "serialization-unpaired"});

  // -- time-domain ---------------------------------------------------------
  cases.push_back({"time-domain: wall value mixed into virtual arithmetic",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) { double d = machine_.elapsed_s() + n->now(); }\n"}},
                   "", "", "time-domain"});
  cases.push_back({"time-domain: taint flows through an assignment",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) {\n"
                     "  double w = machine_.elapsed_s();\n"
                     "  double q = w + n->now();\n"
                     "}\n"}},
                   "", "", "time-domain"});
  cases.push_back({"time-domain: thread backend is the wall domain",
                   pass_time_domain,
                   {{"dmcs/thread_machine.cpp",
                     "void f(N* n) { double d = elapsed_s() + n->now(); }\n"}},
                   "", "", nullptr});
  cases.push_back({"time-domain: pure virtual-time arithmetic is clean",
                   pass_time_domain,
                   {{"mol/x.cpp",
                     "void f(N* n) { double q = n->now() + 1.0; }\n"}},
                   "", "", nullptr});

  return cases;
}

bool run_tree_case(const TreeCase& c) {
  Tree tree;
  for (const auto& [rel, content] : c.files) {
    tree.files.push_back(make_file(rel, content));
  }
  Options opts;
  opts.hierarchy_text = c.hierarchy;
  opts.design_text = c.design;
  Findings out;
  c.pass(tree, opts, out);

  if (c.expect_rule == nullptr) {
    if (out.empty()) return true;
    std::fprintf(stderr, "self-test FAIL: %s (expected clean, got %zu)\n",
                 c.label, out.size());
  } else {
    bool hit = false;
    for (const Finding& f : out) hit = hit || f.rule == c.expect_rule;
    if (hit) return true;
    std::fprintf(stderr, "self-test FAIL: %s (expected rule %s, got %zu other)\n",
                 c.label, c.expect_rule, out.size());
  }
  for (const Finding& f : out) {
    std::fprintf(stderr, "  fired: %s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  return false;
}

/// Report-layer checks: baseline round-trip and SARIF shape.
int report_checks(std::size_t& cases_out) {
  int failures = 0;
  const Findings sample = {{"demo-rule", "dmcs/x.cpp", 3, "a \"quoted\" message"}};

  ++cases_out;
  const auto base = parse_baseline(render_baseline(sample));
  if (!subtract_baseline(sample, base).empty()) {
    std::fprintf(stderr, "self-test FAIL: baseline round-trip still reports\n");
    ++failures;
  }
  ++cases_out;
  if (subtract_baseline(sample, parse_baseline("# empty\n")).size() != 1) {
    std::fprintf(stderr, "self-test FAIL: empty baseline suppressed a finding\n");
    ++failures;
  }
  ++cases_out;
  const std::string sarif = render_sarif(sample);
  if (sarif.find("\"ruleId\": \"demo-rule\"") == std::string::npos ||
      sarif.find("\\\"quoted\\\"") == std::string::npos ||
      sarif.find("premaAnalyze/v1") == std::string::npos) {
    std::fprintf(stderr, "self-test FAIL: SARIF output malformed\n%s\n",
                 sarif.c_str());
    ++failures;
  }
  return failures;
}

}  // namespace

int run_self_test() {
  std::size_t cases = 0;
  int failures = 0;
  for (const TreeCase& c : tree_cases()) {
    ++cases;
    if (!run_tree_case(c)) ++failures;
  }
  failures += report_checks(cases);

  // The migrated prema_lint snippets are part of this binary's contract too.
  std::size_t legacy_cases = 0;
  failures += legacy_self_test(legacy_cases);
  cases += legacy_cases;

  if (failures != 0) {
    std::fprintf(stderr, "prema_analyze --self-test: %d failure(s) out of %zu cases\n",
                 failures, cases);
    return 1;
  }
  std::printf("prema_analyze --self-test: OK (%zu cases)\n", cases);
  return 0;
}

}  // namespace prema::analyze
