// Virtual-time discipline. The runtime runs in two clock domains: virtual
// time (sim::SimTime seconds, read through Node::now() / now_s on the
// emulated machine) and wall-clock time (std::chrono in the real-threads
// backend). Mixing them in arithmetic is always a bug outside
// dmcs/thread_machine.* — where now() *is* wall time by definition — because
// a wall-clock duration added to a virtual timestamp silently destroys the
// determinism the paper's figures rest on.
//
// Dataflow-lite: a first sweep collects identifiers initialized or assigned
// from a wall-clock source (one level of propagation); the flagging sweep
// then reports any statement that combines a wall value (source expression
// or tainted identifier) with a virtual-time value (a .now() call, now_s,
// SimTime) through an arithmetic or relational operator.

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

constexpr const char* kWallMarkers[] = {
    "steady_clock",   "system_clock", "high_resolution_clock",
    "elapsed_s",      "seconds_between", "time_since_epoch",
    "gettimeofday",
};

constexpr const char* kVirtualMarkers[] = {"now_s", "SimTime"};

bool file_allowlisted(std::string_view rel) {
  // The real-threads backend is the wall-clock domain; its now() returns
  // wall seconds and mixing is definitionally impossible there.
  return rel == "dmcs/thread_machine.hpp" || rel == "dmcs/thread_machine.cpp";
}

/// Whole-identifier occurrence check permitting member access and scope
/// prefixes (machine_.elapsed_s() is still a wall source).
bool contains_marker(std::string_view stmt, std::string_view marker) {
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = stmt.find(marker, from);
    if (pos == std::string_view::npos) return false;
    from = pos + 1;
    if (pos > 0 && ident_char(stmt[pos - 1])) continue;
    const std::size_t after = pos + marker.size();
    if (after < stmt.size() && ident_char(stmt[after])) continue;
    return true;
  }
}

bool contains_wall_marker(std::string_view stmt) {
  for (const char* m : kWallMarkers) {
    if (contains_marker(stmt, m)) return true;
  }
  return false;
}

/// A virtual-clock read: a member call `.now()` / `->now()`, or one of the
/// virtual identifiers.
bool contains_virtual_marker(std::string_view stmt) {
  if (find_member_call(stmt, "now", 0) != std::string_view::npos) return true;
  for (const char* m : kVirtualMarkers) {
    if (contains_marker(stmt, m)) return true;
  }
  return false;
}

/// Arithmetic / relational combination present? ('->', '++', '--', template
/// argument lists and unary context are not what we're after, but a
/// statement already known to mix domains rarely contains those alone.)
bool contains_arithmetic(std::string_view stmt) {
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const char c = stmt[i];
    const char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
    const char prev = i > 0 ? stmt[i - 1] : '\0';
    if (c == '+' && next != '+' && prev != '+') return true;
    if (c == '-' && next != '-' && next != '>' && prev != '-') return true;
    if (c == '/') return true;
    // '<' / '>': relational or template-argument punctuation — both count
    // once a statement is known to mix domains. Member access ('->') and
    // shifts do not.
    if (c == '<' && prev != '<' && next != '<') return true;
    if (c == '>' && prev != '-' && prev != '>' && next != '>') return true;
  }
  return false;
}

/// The identifier declared/assigned by a statement shaped `… name = …;`.
std::string assigned_ident(std::string_view stmt) {
  const std::size_t eq = stmt.find('=');
  if (eq == std::string_view::npos || eq + 1 >= stmt.size()) return {};
  if (stmt[eq + 1] == '=' || (eq > 0 && (stmt[eq - 1] == '!' || stmt[eq - 1] == '<' ||
                                         stmt[eq - 1] == '>' || stmt[eq - 1] == '+' ||
                                         stmt[eq - 1] == '-'))) {
    return {};
  }
  std::size_t end = eq;
  while (end > 0 && std::isspace(static_cast<unsigned char>(stmt[end - 1]))) --end;
  std::size_t begin = end;
  while (begin > 0 && ident_char(stmt[begin - 1])) --begin;
  return std::string(stmt.substr(begin, end - begin));
}

/// Statement-by-statement walk: invokes `fn(stmt_begin, stmt_text)` for each
/// ';'-terminated run within the code view.
template <typename Fn>
void for_each_statement(std::string_view code, Fn&& fn) {
  std::size_t begin = 0;
  for (std::size_t p = 0; p < code.size(); ++p) {
    const char c = code[p];
    if (c == ';' || c == '{' || c == '}') {
      if (c == ';') fn(begin, code.substr(begin, p - begin));
      begin = p + 1;
    }
  }
}

}  // namespace

void pass_time_domain(const Tree& tree, const Options&, Findings& out) {
  for (const SourceFile& f : tree.files) {
    if (file_allowlisted(f.rel)) continue;

    // Sweep 1: identifiers fed from a wall-clock source.
    std::set<std::string> wall_idents;
    for_each_statement(f.code, [&](std::size_t, std::string_view stmt) {
      if (!contains_wall_marker(stmt)) return;
      const std::string ident = assigned_ident(stmt);
      if (!ident.empty()) wall_idents.insert(ident);
    });

    // Sweep 2: statements mixing the domains arithmetically.
    for_each_statement(f.code, [&](std::size_t begin, std::string_view stmt) {
      const bool wall = contains_wall_marker(stmt) ||
                        std::any_of(wall_idents.begin(), wall_idents.end(),
                                    [&](const std::string& id) {
                                      return contains_marker(stmt, id);
                                    });
      if (!wall) return;
      if (!contains_virtual_marker(stmt)) return;
      if (!contains_arithmetic(stmt)) return;
      out.push_back({"time-domain", f.rel, line_of(f.code, begin),
                     "statement mixes wall-clock and virtual-time values "
                     "(wall-domain arithmetic belongs in dmcs/thread_machine.*)"});
    });
  }
}

}  // namespace prema::analyze
