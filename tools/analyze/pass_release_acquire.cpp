// Release-acquire pairing — the flow half of the memory-model layer. A
// release store publishes; it only synchronizes-with a load that acquires
// the same atomic. A release store of a manifest field with no acquire-side
// load anywhere in the tree publishes into the void (the ordering it paid
// for protects nobody); an acquire load of a field that no site ever
// releases orders against stores that never happen — both usually mean the
// protocol partner was refactored away.
//
// Like lock-flow, this is direct-evidence-only: a finding fires only on
// sites that *explicitly* spell release or acquire. Implicit seq_cst
// operations, relaxed counters and `++` operator forms participate as
// pairing partners (a seq_cst load is an acquire load and then some) but
// never trigger — so unregistered or deliberately-relaxed traffic stays
// quiet, and the pass reports exactly the half-configured protocols.
//
//  release-acquire-unpaired-store  an explicit memory_order_release store of
//                                  a manifest field with no load/RMW of that
//                                  field anywhere in the tree.
//  release-acquire-unpaired-load   an explicit acquire (or acq_rel) load of
//                                  a manifest field with no store/RMW of
//                                  that field anywhere in the tree.
//
// `// analyze:allow(<rule>)` on the offending line (or the line above)
// acknowledges a reviewed exception.

#include <algorithm>
#include <optional>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {

void pass_release_acquire(const Tree& tree, const Options& opts,
                          Findings& out) {
  if (opts.atomics_text.empty()) return;
  std::vector<Finding> parse_errors;  // reported by atomic-discipline
  const std::vector<AtomicEntry> entries =
      parse_atomics_manifest("atomics.txt", opts.atomics_text, parse_errors);
  if (entries.empty()) return;

  std::optional<Index> local;
  const Index& idx =
      opts.index != nullptr ? *opts.index : local.emplace(build_index(tree));

  std::set<std::string> names;
  for (const AtomicEntry& e : entries) names.insert(e.name);

  struct Evidence {
    const AtomicOp* release_store = nullptr;  ///< first explicit release store
    const AtomicOp* acquire_load = nullptr;   ///< first explicit acquire load
    int acquire_side = 0;  ///< loads / RMWs: anything that can observe
    int release_side = 0;  ///< stores / RMWs / operator writes: publishers
  };
  std::vector<Evidence> evidence(entries.size());

  const std::vector<AtomicOp> ops = collect_atomic_ops(idx, names);
  for (const AtomicOp& op : ops) {
    const SourceFile& f = tree.files[static_cast<std::size_t>(op.file)];
    const int ei = resolve_atomic(entries, f.rel, op.cls, op.field);
    if (ei < 0) continue;
    Evidence& ev = evidence[static_cast<std::size_t>(ei)];
    const auto spells = [&](const char* order) {
      return std::find(op.orders.begin(), op.orders.end(), order) !=
             op.orders.end();
    };
    const bool is_load = op.op == "load";
    const bool is_store = op.op == "store" || op.op == "=";
    const bool is_rmw = atomic_op_is_rmw(op.op);
    if (is_store || is_rmw) ++ev.release_side;
    if (is_load || is_rmw) ++ev.acquire_side;
    if (is_store && spells("release") && ev.release_store == nullptr) {
      ev.release_store = &op;
    }
    if (is_load && (spells("acquire") || spells("acq_rel")) &&
        ev.acquire_load == nullptr) {
      ev.acquire_load = &op;
    }
  }

  auto site_context = [&](const AtomicOp& op) {
    const int fn = idx.enclosing(op.file, op.pos);
    return fn < 0 ? std::string("<file scope>")
                  : idx.funcs[static_cast<std::size_t>(fn)].qual;
  };
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const AtomicEntry& e = entries[i];
    const Evidence& ev = evidence[i];
    const std::string qual = e.cls.empty() ? e.name : e.cls + "::" + e.name;
    if (ev.release_store != nullptr && ev.acquire_side == 0) {
      const AtomicOp& op = *ev.release_store;
      const SourceFile& f = tree.files[static_cast<std::size_t>(op.file)];
      if (!allow_comment(f, op.pos, "release-acquire-unpaired-store")) {
        out.push_back(
            {"release-acquire-unpaired-store", f.rel, line_of(f.code, op.pos),
             "'" + site_context(op) + "' publishes '" + qual +
                 "' with memory_order_release but no site anywhere loads "
                 "it — the release synchronizes-with nothing"});
      }
    }
    if (ev.acquire_load != nullptr && ev.release_side == 0) {
      const AtomicOp& op = *ev.acquire_load;
      const SourceFile& f = tree.files[static_cast<std::size_t>(op.file)];
      if (!allow_comment(f, op.pos, "release-acquire-unpaired-load")) {
        out.push_back(
            {"release-acquire-unpaired-load", f.rel, line_of(f.code, op.pos),
             "'" + site_context(op) + "' acquires '" + qual +
                 "' but no site anywhere stores it — the acquire orders "
                 "against stores that never happen"});
      }
    }
  }
}

}  // namespace prema::analyze
