// The original prema_lint rule families, migrated into the analyzer
// framework as the "conventions" pass:
//
//  1. determinism — no wall clocks or ambient randomness in library code.
//     std::chrono::{steady,system,high_resolution}_clock, std::random_device,
//     and the C legacy rand()/srand()/time()/gettimeofday() are banned
//     everywhere except the real-threads backend (thread_machine.*, which
//     *is* the wall-clock domain) and the seeded RNG wrapper
//     (support/rng.hpp).
//
//  2. locking — no raw std:: synchronization primitives outside
//     support/thread_annotations.hpp; a std::mutex smuggled in anywhere else
//     is invisible to -Wthread-safety.
//
//  3. logging — no direct stdout/stderr writes in library code; use
//     support/log.hpp. CLI entry points (*_main.cpp) and the log/assert
//     implementation itself are exempt.
//
// The randomness family (owning util::Rng outside the sanctioned owners)
// rides along with determinism as it always has.

#include <cctype>
#include <cstdio>
#include <iterator>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

struct Rule {
  const char* name;
  const char* needle;
  bool allow_scope_prefix;  ///< std::-qualified names keep their ':' prefix
  bool require_call;        ///< only flag when followed by '('
  const char* why;
  bool skip_if_ref = false;  ///< ignore when followed by '&' (a reference)
};

constexpr Rule kRules[] = {
    // -- determinism --------------------------------------------------------
    {"determinism", "steady_clock", true, false,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "system_clock", true, false,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "high_resolution_clock", true, false,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "random_device", true, false,
     "ambient entropy; use the seeded util::Rng (support/rng.hpp)"},
    {"determinism", "rand", true, true,
     "legacy C PRNG; use the seeded util::Rng (support/rng.hpp)"},
    {"determinism", "srand", true, true,
     "legacy C PRNG; use the seeded util::Rng (support/rng.hpp)"},
    {"determinism", "time", true, true,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "gettimeofday", true, true,
     "wall clock in library code; use the machine's virtual clock"},
    // -- randomness ---------------------------------------------------------
    // Owning a util::Rng means owning a random stream, and every stream is
    // schedule-relevant state: only the emulator core, the thread backend,
    // the fault-injection subsystem and the partitioner may hold one.
    // Borrowing by reference (util::Rng&) is fine — that consumes the
    // machine's seeded stream instead of minting a new one.
    {"randomness", "Rng", true, false,
     "owning RNG stream outside the sanctioned owners (sim engine, thread "
     "backend, src/fault, partitioner); take util::Rng& from the node instead",
     /*skip_if_ref=*/true},
    // -- locking ------------------------------------------------------------
    {"locking", "mutex", true, false,
     "raw std::mutex; use util::Mutex (support/thread_annotations.hpp) so "
     "-Wthread-safety can see it"},
    {"locking", "recursive_mutex", true, false,
     "raw std::recursive_mutex; use util::RecursiveMutex"},
    {"locking", "shared_mutex", true, false,
     "raw std::shared_mutex; use util::Mutex"},
    {"locking", "lock_guard", true, false, "raw std::lock_guard; use util::LockGuard"},
    {"locking", "scoped_lock", true, false, "raw std::scoped_lock; use util::LockGuard"},
    {"locking", "unique_lock", true, false, "raw std::unique_lock; use util::UniqueLock"},
    {"locking", "condition_variable", true, false,
     "raw std::condition_variable; use util::CondVar"},
    // -- logging ------------------------------------------------------------
    {"logging", "printf", true, true,
     "direct stdout write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "fprintf", true, true,
     "direct stderr write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "vfprintf", true, true,
     "direct stderr write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "puts", true, true,
     "direct stdout write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "fputs", true, true,
     "direct stream write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "cout", true, false,
     "direct stdout write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "cerr", true, false,
     "direct stderr write; use PREMA_LOG_* (support/log.hpp)"},
};

/// Per-rule allowlist, matched against the path relative to the src root
/// (forward slashes).
bool allowed(std::string_view rule, std::string_view rel) {
  if (rule == "determinism") {
    // The real-threads backend is the wall-clock domain by definition; the
    // RNG wrapper is where seeding is implemented.
    return rel == "dmcs/thread_machine.hpp" || rel == "dmcs/thread_machine.cpp" ||
           rel == "support/rng.hpp";
  }
  if (rule == "randomness") {
    // The sanctioned RNG owners: the emulator core (one stream per machine),
    // the thread backend (per-worker streams), the fault subsystem (one
    // stream per link — the whole point of src/fault), the RNG wrapper
    // itself, the partitioner's seeded coarsening, and the service-mode
    // arrival generators (one seeded stream per synthetic client source).
    if (rel.size() >= 6 && rel.substr(0, 6) == "fault/") return true;
    return rel == "sim/engine.hpp" || rel == "dmcs/thread_machine.hpp" ||
           rel == "dmcs/thread_machine.cpp" || rel == "support/rng.hpp" ||
           rel == "partition/multilevel.cpp" ||
           rel == "service/arrivals.hpp" || rel == "service/arrivals.cpp";
  }
  if (rule == "locking") {
    // The one place raw primitives may appear: the annotated wrappers.
    return rel == "support/thread_annotations.hpp";
  }
  if (rule == "logging") {
    // CLI entry points print by design; the logger and the assert macro are
    // the sanctioned stderr writers.
    if (rel.size() >= 9 && rel.substr(rel.size() - 9) == "_main.cpp") return true;
    return rel == "support/log.hpp" || rel == "support/log.cpp" ||
           rel == "support/assert.hpp";
  }
  return false;
}

// ---------------------------------------------------------------------------
// Self-test snippets: every rule must fire on a seeded violation and stay
// silent on the idiomatic legal spelling of the same thing. Kept verbatim
// from the original prema_lint so `prema_lint --self-test` behavior is
// preserved through the alias.
// ---------------------------------------------------------------------------

struct Snippet {
  const char* label;
  const char* rel;  ///< pretend path relative to src root
  const char* code;
  bool expect_violation;
};

constexpr Snippet kSnippets[] = {
    // Positives: each rule family catches its seeded violation.
    {"steady_clock in library code", "ilb/balancer.cpp",
     "auto t = std::chrono::steady_clock::now();", true},
    {"random_device in library code", "mol/mol.cpp",
     "std::random_device rd; auto s = rd();", true},
    {"bare rand() call", "sim/event_queue.cpp", "int r = rand();", true},
    {"bare time() call", "prema/runtime.cpp", "auto t = time(nullptr);", true},
    {"std::time() call", "prema/runtime.cpp", "auto t = std::time(nullptr);", true},
    {"owning Rng in library code", "ilb/policies/work_stealing.cpp",
     "util::Rng rng_{7};", true},
    {"Rng in a container outside src/fault", "mol/mol.cpp",
     "std::vector<util::Rng> streams_;", true},
    {"raw std::mutex", "ilb/scheduler.hpp", "std::mutex mu_;", true},
    {"raw lock_guard", "ilb/scheduler.cpp",
     "std::lock_guard<std::mutex> g(mu_);", true},
    {"raw condition_variable", "dmcs/node.hpp", "std::condition_variable cv_;", true},
    {"printf in library code", "mol/mol.cpp", "printf(\"%d\", x);", true},
    {"std::cout in library code", "trace/export.cpp", "std::cout << x;", true},
    {"fprintf in library code", "graph/graph.cpp",
     "std::fprintf(stderr, \"x\");", true},

    // Negatives: legal idioms that a naive substring scan would flag.
    {"steady_clock allowed in the thread backend", "dmcs/thread_machine.cpp",
     "using Clock = std::chrono::steady_clock;", false},
    {"raw mutex allowed in the wrapper header", "support/thread_annotations.hpp",
     "std::mutex mu_; std::condition_variable cv_;", false},
    {"fprintf allowed in CLI entry points", "trace/trace_check_main.cpp",
     "std::fprintf(stderr, \"usage\\n\");", false},
    {"fprintf allowed in the logger", "support/log.cpp",
     "std::vfprintf(stderr, fmt, args);", false},
    {"snprintf is formatting, not output", "trace/export.cpp",
     "std::snprintf(buf, sizeof buf, \"%g\", v);", false},
    {"transfer_time() is not ::time()", "sim/network.cpp",
     "double t = transfer_time(bytes);", false},
    {"member .time() is not ::time()", "sim/event_queue.cpp",
     "double t = ev.time();", false},
    {"steady_clock in a comment", "ilb/balancer.cpp",
     "// steady_clock would be wrong here\nint x = 0;", false},
    {"mutex in a string literal", "support/log.cpp",
     "const char* s = \"std::mutex is banned\";", false},
    {"util::Mutex wrapper is fine", "dmcs/thread_machine.hpp",
     "util::Mutex inbox_mutex_; util::LockGuard g(inbox_mutex_);", false},
    {"identifier containing a banned word", "ilb/scheduler.cpp",
     "int mutex_count = 0; double timeout = grand_total;", false},
    {"rng.hpp may seed from anywhere", "support/rng.hpp",
     "std::random_device rd;", false},
    {"borrowing util::Rng& is fine anywhere", "ilb/policies/work_stealing.cpp",
     "util::Rng& rng = ctx.rng();", false},
    {"fault subsystem owns its per-link streams", "fault/fault_plan.hpp",
     "std::vector<util::Rng> link_rng_;", false},
    {"sim engine owns the machine stream", "sim/engine.hpp",
     "util::Rng rng_;", false},
    {"partitioner seeds its own stream", "partition/multilevel.cpp",
     "util::Rng rng(opts.seed);", false},
    {"arrival generator owns its client streams", "service/arrivals.hpp",
     "util::Rng rng_;", false},
    {"Rng owned outside the service allowlist", "service/ledger.cpp",
     "util::Rng rng_{3};", true},
};

}  // namespace

void lint_content(const std::string& rel, std::string_view raw, Findings& out) {
  const std::string code = strip_comments_and_literals(raw);
  for (const Rule& r : kRules) {
    if (allowed(r.name, rel)) continue;
    std::size_t from = 0;
    while (true) {
      const std::size_t pos =
          find_ident(code, r.needle, from, r.allow_scope_prefix, r.require_call);
      if (pos == std::string_view::npos) break;
      from = pos + 1;
      if (r.skip_if_ref) {
        std::size_t after = pos + std::string_view(r.needle).size();
        after = skip_ws(code, after);
        if (after < code.size() && code[after] == '&') continue;
      }
      Finding f;
      f.rule = r.name;
      f.file = rel;
      f.line = line_of(code, pos);
      f.message = std::string("`") + r.needle + "`: " + r.why;
      out.push_back(std::move(f));
    }
  }
}

void pass_conventions(const Tree& tree, const Options&, Findings& out) {
  for (const SourceFile& f : tree.files) lint_content(f.rel, f.raw, out);
}

int legacy_self_test(std::size_t& cases_out) {
  cases_out = std::size(kSnippets);
  int failures = 0;
  for (const Snippet& s : kSnippets) {
    Findings out;
    lint_content(s.rel, s.code, out);
    const bool fired = !out.empty();
    if (fired != s.expect_violation) {
      std::fprintf(stderr, "self-test FAIL: %s (expected %s, got %s)\n", s.label,
                   s.expect_violation ? "violation" : "clean",
                   fired ? "violation" : "clean");
      for (const auto& f : out) {
        std::fprintf(stderr, "  fired: [%s] %s at line %d\n", f.rule.c_str(),
                     f.message.c_str(), f.line);
      }
      ++failures;
    }
  }
  return failures;
}

}  // namespace prema::analyze
