// prema_lint — compatibility alias for the original single-pass linter, now
// a thin shell over the analyzer framework's "conventions" pass. CLI, output
// and exit codes match the retired tools/prema_lint.cpp byte for byte; new
// checks live in prema_analyze (main.cpp).

#include <cstdio>
#include <string>

#include "analyze/passes.hpp"

namespace {

using namespace prema::analyze;

int self_test() {
  std::size_t cases = 0;
  const int failures = legacy_self_test(cases);
  if (failures != 0) {
    std::fprintf(stderr, "prema_lint --self-test: %d failure(s) out of %zu cases\n",
                 failures, cases);
    return 1;
  }
  std::printf("prema_lint --self-test: OK (%zu cases)\n", cases);
  return 0;
}

int lint_tree(const std::string& root) {
  Tree tree;
  if (!load_tree(root, tree)) {
    std::fprintf(stderr, "prema_lint: %s is not a directory\n", root.c_str());
    return 2;
  }
  Findings violations;
  Options opts;
  pass_conventions(tree, opts, violations);
  for (const Finding& f : violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "prema_lint: %zu violation(s) in %zu file(s) scanned\n",
                 violations.size(), tree.files.size());
    return 1;
  }
  std::printf("prema_lint: OK (%zu files scanned)\n", tree.files.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") return self_test();
  if (argc != 2) {
    std::fprintf(stderr, "usage: prema_lint <src-root> | prema_lint --self-test\n");
    return 2;
  }
  return lint_tree(argv[1]);
}
