// Protocol-completeness analysis. The wire protocol's source of truth is
// the PREMA_WIRE_HANDLERS X-macro in src/dmcs/message.hpp: one entry per
// cross-processor active-message handler name. This pass cross-checks it
// against reality:
//
//  - every manifest entry must be registered somewhere
//    (HandlerRegistry::add / Machine::registry().add with that name)      -> protocol-unregistered
//  - every dotted-name registration must appear in the manifest           -> protocol-unknown-handler
//  - no wire name may be registered twice (the registry aborts at
//    runtime; this catches it statically)                                 -> protocol-duplicate
//  - every manifest entry needs a display label in the trace table
//    (PREMA_WIRE_LABELS in src/trace/wire_names.hpp), and the table may
//    not carry labels for names the manifest dropped                      -> protocol-untraced /
//                                                                            protocol-stale-label
//
// Registrations are recognized as member calls `.add("x.y", ...)` whose
// first argument is a dotted string — the naming convention every wire
// handler in the tree follows ("mol.route", "prema.term", ...).

#include <map>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

constexpr const char* kManifestFile = "dmcs/message.hpp";
constexpr const char* kManifestMacro = "PREMA_WIRE_HANDLERS";
constexpr const char* kLabelsFile = "trace/wire_names.hpp";
constexpr const char* kLabelsMacro = "PREMA_WIRE_LABELS";

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Parse the `X(sym, "name")` (or `X("name", "label")`) entries of an
/// X-macro list. Returns name -> line of first occurrence; for the labels
/// form, the *first* string argument is the key.
std::map<std::string, int> parse_xmacro(const SourceFile& f,
                                        std::string_view macro_name) {
  std::map<std::string, int> out;
  const std::size_t def = f.code.find("#define " + std::string(macro_name));
  if (def == std::string::npos) return out;
  // The macro body is the run of backslash-continued lines from the define.
  std::size_t end = def;
  while (end < f.code.size()) {
    const std::size_t eol = f.code.find('\n', end);
    if (eol == std::string::npos) {
      end = f.code.size();
      break;
    }
    std::size_t last = eol;
    while (last > end && (f.code[last - 1] == ' ' || f.code[last - 1] == '\r')) {
      --last;
    }
    if (last == end || f.code[last - 1] != '\\') {
      end = eol;
      break;
    }
    end = eol + 1;
  }
  std::size_t from = def;
  while (true) {
    const std::size_t pos = find_ident(f.code, "X", from, false, true);
    if (pos == std::string_view::npos || pos >= end) break;
    from = pos + 1;
    const std::size_t open = f.code.find('(', pos);
    if (open == std::string::npos || open >= end) break;
    // The name is the first string literal between the parens (entries of
    // the handlers form are `X(kSym, "name")`; of the labels form,
    // `X("name", "label")` — either way the first quoted string is the name).
    const std::size_t close = matching_paren(f.code, open);
    if (close == std::string_view::npos) continue;
    std::size_t q = f.raw.find('"', open);
    if (q == std::string::npos || q >= close) continue;
    std::string name;
    for (++q; q < f.raw.size() && f.raw[q] != '"'; ++q) name.push_back(f.raw[q]);
    if (!name.empty() && out.find(name) == out.end()) {
      out.emplace(name, line_of(f.code, pos));
    }
  }
  return out;
}

struct Registration {
  std::string rel;
  int line = 0;
};

}  // namespace

void pass_protocol(const Tree& tree, const Options&, Findings& out) {
  const SourceFile* manifest_file = nullptr;
  const SourceFile* labels_file = nullptr;
  for (const SourceFile& f : tree.files) {
    if (ends_with(f.rel, kManifestFile)) manifest_file = &f;
    if (ends_with(f.rel, kLabelsFile)) labels_file = &f;
  }
  // No manifest, nothing to check (fixture trees without protocol files).
  if (manifest_file == nullptr) return;

  const std::map<std::string, int> manifest =
      parse_xmacro(*manifest_file, kManifestMacro);
  if (manifest.empty()) {
    out.push_back({"protocol-unregistered", manifest_file->rel, 1,
                   std::string("no ") + kManifestMacro +
                       " manifest found in " + kManifestFile});
    return;
  }

  // Registrations: member calls `.add("dotted.name", ...)` anywhere.
  std::map<std::string, std::vector<Registration>> registrations;
  for (const SourceFile& f : tree.files) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_member_call(f.code, "add", from);
      if (pos == std::string_view::npos) break;
      from = pos + 1;
      const std::size_t open = f.code.find('(', pos);
      const auto name = call_string_arg(f, open);
      if (!name || name->find('.') == std::string::npos) continue;
      registrations[*name].push_back({f.rel, line_of(f.code, pos)});
    }
  }

  for (const auto& [name, line] : manifest) {
    if (registrations.find(name) == registrations.end()) {
      out.push_back({"protocol-unregistered", manifest_file->rel, line,
                     "wire handler '" + name +
                         "' is in the manifest but never registered"});
    }
  }
  for (const auto& [name, sites] : registrations) {
    if (manifest.find(name) == manifest.end()) {
      out.push_back({"protocol-unknown-handler", sites.front().rel,
                     sites.front().line,
                     "wire handler '" + name + "' is registered but missing from " +
                         std::string(kManifestMacro) + " (" + kManifestFile + ")"});
    }
    if (sites.size() > 1) {
      out.push_back({"protocol-duplicate", sites[1].rel, sites[1].line,
                     "wire handler '" + name + "' is registered more than once"});
    }
  }

  // Trace labels. The table is required once a manifest exists: deleting
  // trace/wire_names.hpp must not silently pass.
  if (labels_file == nullptr) {
    out.push_back({"protocol-untraced", manifest_file->rel, 1,
                   std::string(kLabelsFile) +
                       " not found: wire handlers have no trace labels"});
    return;
  }
  const std::map<std::string, int> labels = parse_xmacro(*labels_file, kLabelsMacro);
  for (const auto& [name, line] : manifest) {
    if (labels.find(name) == labels.end()) {
      out.push_back({"protocol-untraced", labels_file->rel, 1,
                     "wire handler '" + name + "' has no label in " +
                         std::string(kLabelsMacro)});
    }
    (void)line;
  }
  for (const auto& [name, line] : labels) {
    if (manifest.find(name) == manifest.end()) {
      out.push_back({"protocol-stale-label", labels_file->rel, line,
                     "label for '" + name +
                         "' names a wire handler the manifest does not have"});
    }
  }
}

}  // namespace prema::analyze
