// Protocol state-machine verification. Each spec file under
// tools/analyze/protocols/*.txt declares a protocol's state variables and
// the complete set of transitions allowed to mutate them:
//
//   protocol reliable
//   files dmcs/reliable
//   var next_seq pending expected buffer
//   transition stamp fn=stamp writes=next_seq,pending
//   transition retx fn=on_retransmit_timer files=dmcs/sim emits=retransmit
//
// The pass then checks, whole-program via the symbol index:
//
//  protocol-fsm-missing-fn   a declared transition names a function that
//                            does not exist in its scope — the spec and the
//                            code have drifted apart.
//  protocol-fsm-extra-write  a transition's implementation writes a protocol
//                            state variable its declaration does not grant.
//  protocol-fsm-missing-emit a transition bound to a trace event
//                            (emits=<event>) never calls the TraceSink hook
//                            of that name — the protocol would mutate state
//                            invisibly to the replay/validation tooling.
//  protocol-fsm-undeclared   a function inside the protocol's owning files
//                            mutates protocol state without being declared
//                            as a transition at all.
//  protocol-fsm-spec         the spec file itself is malformed (parse
//                            errors surface as findings, not silent skips).
//
// Writes are attributed to protocol variables only through member-access
// chains (`tx.pending.emplace(...)`) or trailing-underscore members, so a
// local variable that happens to share a state-variable name cannot trip
// the check.

#include <map>
#include <optional>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// A write counts against protocol var `v` only when it is plausibly a
/// member access: reached through a chain (`tx.pending...`) or spelled with
/// the member trailing underscore.
bool is_protocol_var_write(const WriteSite& site, const std::string& v) {
  if (site.chain.back() != v) return false;
  return site.chain.size() >= 2 || (!v.empty() && v.back() == '_');
}

}  // namespace

void pass_protocol_fsm(const Tree& tree, const Options& opts, Findings& out) {
  if (opts.protocol_specs.empty()) return;
  std::optional<Index> local;
  const Index& idx =
      opts.index != nullptr ? *opts.index : local.emplace(build_index(tree));

  for (const auto& [spec_name, text] : opts.protocol_specs) {
    std::vector<Finding> errors;
    const std::optional<ProtocolSpec> parsed =
        parse_protocol_spec(spec_name, text, errors);
    for (const Finding& e : errors) out.push_back(e);
    if (!parsed) continue;
    const ProtocolSpec& spec = *parsed;
    const std::set<std::string> vars(spec.vars.begin(), spec.vars.end());

    // Union of granted writes per implementing function, and the set of
    // function names the spec declares as transitions.
    std::map<std::string, std::set<std::string>> allowed;
    std::set<std::string> declared;
    for (const ProtocolTransition& t : spec.transitions) {
      declared.insert(t.fn);
      allowed[t.fn].insert(t.writes.begin(), t.writes.end());
    }

    for (const ProtocolTransition& t : spec.transitions) {
      const std::string& scope = t.files.empty() ? spec.files : t.files;
      bool found = false;
      for (std::size_t fi = 0; fi < idx.funcs.size(); ++fi) {
        const FunctionDef& fn = idx.funcs[fi];
        if (fn.name != t.fn) continue;
        const SourceFile& f = idx.tree->files[static_cast<std::size_t>(fn.file)];
        if (!starts_with(f.rel, scope)) continue;
        found = true;

        // -- declared writes only -------------------------------------------
        const std::set<std::string>& grant = allowed[t.fn];
        for (const WriteSite& site :
             collect_writes(f, fn.body_begin, fn.body_end)) {
          for (const std::string& v : spec.vars) {
            if (!is_protocol_var_write(site, v)) continue;
            if (grant.count(v) != 0) continue;
            if (allow_comment(f, site.pos, "protocol-fsm-extra-write")) continue;
            out.push_back({"protocol-fsm-extra-write", f.rel,
                           line_of(f.code, site.pos),
                           "protocol '" + spec.name + "': '" + fn.qual +
                               "' writes state variable '" + v +
                               "' not granted to transition '" + t.name + "'"});
          }
        }

        // -- bound trace event ----------------------------------------------
        if (!t.emits.empty()) {
          const std::string_view body =
              std::string_view(f.code).substr(0, fn.body_end);
          const std::size_t member =
              find_member_call(body, t.emits, fn.body_begin);
          const std::size_t plain =
              find_ident(body, t.emits, fn.body_begin, true, true);
          if (member == std::string_view::npos &&
              plain == std::string_view::npos &&
              !allow_comment(f, fn.name_pos, "protocol-fsm-missing-emit")) {
            out.push_back({"protocol-fsm-missing-emit", f.rel, fn.line,
                           "protocol '" + spec.name + "': transition '" +
                               t.name + "' ('" + fn.qual +
                               "') never emits bound trace event '" + t.emits +
                               "'"});
          }
        }
      }
      if (!found) {
        out.push_back({"protocol-fsm-missing-fn", spec_name, t.line,
                       "protocol '" + spec.name + "': transition '" + t.name +
                           "' names function '" + t.fn +
                           "' but none exists under '" + scope + "'"});
      }
    }

    // -- undeclared writers inside the protocol's owning files --------------
    std::set<std::string> reported;
    for (std::size_t fi = 0; fi < idx.funcs.size(); ++fi) {
      const FunctionDef& fn = idx.funcs[fi];
      if (declared.count(fn.name) != 0) continue;
      const SourceFile& f = idx.tree->files[static_cast<std::size_t>(fn.file)];
      if (!starts_with(f.rel, spec.files)) continue;
      for (const WriteSite& site :
           collect_writes(f, fn.body_begin, fn.body_end)) {
        for (const std::string& v : spec.vars) {
          if (!is_protocol_var_write(site, v)) continue;
          if (allow_comment(f, site.pos, "protocol-fsm-undeclared")) continue;
          const std::string key = fn.qual + "|" + v;
          if (!reported.insert(key).second) continue;
          out.push_back({"protocol-fsm-undeclared", f.rel,
                         line_of(f.code, site.pos),
                         "protocol '" + spec.name + "': '" + fn.qual +
                             "' mutates state variable '" + v +
                             "' but is not a declared transition"});
        }
      }
    }
  }
}

}  // namespace prema::analyze
