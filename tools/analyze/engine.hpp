#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/passes.hpp"

/// \file engine.hpp
/// The parallel + incremental analyzer driver. Passes stay pure functions
/// over the tree; the engine decides how to run them:
///
///  - per-file passes (conventions, time-domain) shard into one task per
///    file, each run over a single-file view of the tree;
///  - whole-tree passes run as one task each, sharing one whole-program
///    index built in parallel through the same pool;
///  - every task writes a preassigned result slot, and slots concatenate in
///    (pass registry order, file order) — output is byte-identical at any
///    --jobs width;
///  - an optional on-disk cache keyed by (format version, pass, manifest
///    hashes, file content hash) skips tasks whose inputs are unchanged.
///    Per-file tasks key on their one file, whole-tree tasks on the whole
///    tree's hash, so touching one file re-runs per-file work for that file
///    only. Corrupt or unreadable entries degrade to a miss.

namespace prema::analyze {

struct EngineOptions {
  int jobs = 1;               ///< worker threads; 0 = hardware concurrency
  std::string cache_dir;      ///< "" disables the on-disk cache
  std::vector<std::string> passes;  ///< registry names to run; empty = all
};

struct PassStat {
  std::string name;
  double ms = 0;                ///< summed task time spent in this pass
  std::size_t cache_hits = 0;   ///< tasks answered from the cache
  std::size_t cache_misses = 0; ///< tasks actually run
};

struct EngineStats {
  std::vector<PassStat> passes;  ///< selected passes, registry order
  double index_ms = 0;  ///< building the shared whole-program index
  double task_ms = 0;   ///< summed task time (all passes)
  double wall_ms = 0;   ///< end-to-end engine time
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  int jobs = 1;  ///< effective worker count
};

/// Run the selected passes over `tree`, appending findings in deterministic
/// (pass registry, file) order. `opts.index` is ignored — the engine builds
/// and shares its own.
void run_engine(const Tree& tree, const Options& opts,
                const EngineOptions& eopts, Findings& out,
                EngineStats* stats = nullptr);

}  // namespace prema::analyze
