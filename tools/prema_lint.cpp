// prema_lint: determinism and locking-discipline linter for the PREMA source
// tree. A fast token scan (no libclang) that walks src/ and enforces the
// invariants the runtime's reproducibility and thread-safety analysis rest
// on:
//
//  1. determinism — no wall clocks or ambient randomness in library code.
//     std::chrono::{steady,system,high_resolution}_clock, std::random_device,
//     and the C legacy rand()/srand()/time()/clock()/gettimeofday() are
//     banned everywhere except the real-threads backend (thread_machine.*,
//     which *is* the wall-clock domain) and the seeded RNG wrapper
//     (support/rng.hpp). The emulated machine must derive every number from
//     seeded state or Figures 3-6 stop being reproducible.
//
//  2. locking — no raw std:: synchronization primitives outside
//     support/thread_annotations.hpp. Clang's -Wthread-safety can only see
//     mutexes that carry capability attributes; a std::mutex smuggled in
//     anywhere else is invisible to the analysis, so the lint closes that
//     hole.
//
//  3. logging — no direct stdout/stderr writes (printf family, std::cout,
//     std::cerr) in library code; use support/log.hpp. CLI entry points
//     (*_main.cpp) and the log/assert implementation itself are exempt.
//     snprintf-into-a-buffer is formatting, not output, and stays legal.
//
// Comments, string literals (including raw strings), and char literals are
// stripped before matching, so prose and format strings never trip a rule.
//
// Usage:
//   prema_lint <src-root>     lint every .hpp/.cpp under the directory
//   prema_lint --self-test    run the built-in positive/negative snippets
//
// Exit code 0 = clean, 1 = violations (or self-test failure), 2 = usage.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string needle;
  std::string why;
};

// ---------------------------------------------------------------------------
// Lexer: replace comments and literals with spaces, preserving newlines so
// line numbers survive.
// ---------------------------------------------------------------------------

std::string strip_comments_and_literals(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto blank_until = [&](std::size_t end) {
    for (; i < end && i < n; ++i) out.push_back(in[i] == '\n' ? '\n' : ' ');
  };

  while (i < n) {
    const char c = in[i];
    // Line comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      std::size_t end = in.find('\n', i);
      blank_until(end == std::string_view::npos ? n : end);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      std::size_t end = in.find("*/", i + 2);
      blank_until(end == std::string_view::npos ? n : end + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(in[i - 1])) &&
                    in[i - 1] != '_'))) {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && in[p] != '(' && delim.size() <= 16) delim.push_back(in[p++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = in.find(closer, p);
      blank_until(end == std::string_view::npos ? n : end + closer.size());
      continue;
    }
    // Ordinary string / char literal. A lone apostrophe between digits is a
    // C++14 digit separator (1'000'000), not a char literal.
    if (c == '"' ||
        (c == '\'' && !(i > 0 && std::isdigit(static_cast<unsigned char>(in[i - 1])) &&
                        i + 1 < n && std::isdigit(static_cast<unsigned char>(in[i + 1]))))) {
      std::size_t p = i + 1;
      while (p < n && in[p] != c && in[p] != '\n') {
        if (in[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      blank_until(p < n ? p + 1 : n);
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Matching. std::regex has no lookbehind, so identifier boundaries are
// checked by hand.
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// First position >= `from` where `needle` occurs as a whole identifier.
/// Member access (`msg.time`, `obj->time`) never matches — that names
/// someone else's `time`, not ::time. `allow_scope_prefix` permits a
/// preceding "::" (so `std::time` is caught too); without it any scope
/// qualification disqualifies the match. `require_call` additionally demands
/// a following '(' (possibly after whitespace), so taking an address or
/// naming a type does not count.
std::size_t find_ident(std::string_view hay, std::string_view needle,
                       std::size_t from, bool allow_scope_prefix,
                       bool require_call) {
  while (true) {
    const std::size_t pos = hay.find(needle, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    from = pos + 1;
    if (pos > 0) {
      const char before = hay[pos - 1];
      if (ident_char(before)) continue;
      if (before == '.' || (before == '>' && pos >= 2 && hay[pos - 2] == '-')) {
        continue;
      }
      if (!allow_scope_prefix && before == ':') continue;
    }
    std::size_t after = pos + needle.size();
    if (after < hay.size() && ident_char(hay[after])) continue;
    if (require_call) {
      while (after < hay.size() &&
             std::isspace(static_cast<unsigned char>(hay[after]))) {
        ++after;
      }
      if (after >= hay.size() || hay[after] != '(') continue;
    }
    return pos;
  }
}

struct Rule {
  const char* name;
  const char* needle;
  bool allow_scope_prefix;  ///< std::-qualified names keep their ':' prefix
  bool require_call;        ///< only flag when followed by '('
  const char* why;
  bool skip_if_ref = false;  ///< ignore when followed by '&' (a reference)
};

constexpr Rule kRules[] = {
    // -- determinism --------------------------------------------------------
    {"determinism", "steady_clock", true, false,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "system_clock", true, false,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "high_resolution_clock", true, false,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "random_device", true, false,
     "ambient entropy; use the seeded util::Rng (support/rng.hpp)"},
    {"determinism", "rand", true, true,
     "legacy C PRNG; use the seeded util::Rng (support/rng.hpp)"},
    {"determinism", "srand", true, true,
     "legacy C PRNG; use the seeded util::Rng (support/rng.hpp)"},
    {"determinism", "time", true, true,
     "wall clock in library code; use the machine's virtual clock"},
    {"determinism", "gettimeofday", true, true,
     "wall clock in library code; use the machine's virtual clock"},
    // -- randomness ---------------------------------------------------------
    // Owning a util::Rng means owning a random stream, and every stream is
    // schedule-relevant state: only the emulator core, the thread backend,
    // the fault-injection subsystem and the partitioner may hold one.
    // Borrowing by reference (util::Rng&) is fine — that consumes the
    // machine's seeded stream instead of minting a new one.
    {"randomness", "Rng", true, false,
     "owning RNG stream outside the sanctioned owners (sim engine, thread "
     "backend, src/fault, partitioner); take util::Rng& from the node instead",
     /*skip_if_ref=*/true},
    // -- locking ------------------------------------------------------------
    {"locking", "mutex", true, false,
     "raw std::mutex; use util::Mutex (support/thread_annotations.hpp) so "
     "-Wthread-safety can see it"},
    {"locking", "recursive_mutex", true, false,
     "raw std::recursive_mutex; use util::RecursiveMutex"},
    {"locking", "shared_mutex", true, false,
     "raw std::shared_mutex; use util::Mutex"},
    {"locking", "lock_guard", true, false, "raw std::lock_guard; use util::LockGuard"},
    {"locking", "scoped_lock", true, false, "raw std::scoped_lock; use util::LockGuard"},
    {"locking", "unique_lock", true, false, "raw std::unique_lock; use util::UniqueLock"},
    {"locking", "condition_variable", true, false,
     "raw std::condition_variable; use util::CondVar"},
    // -- logging ------------------------------------------------------------
    {"logging", "printf", true, true,
     "direct stdout write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "fprintf", true, true,
     "direct stderr write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "vfprintf", true, true,
     "direct stderr write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "puts", true, true,
     "direct stdout write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "fputs", true, true,
     "direct stream write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "cout", true, false,
     "direct stdout write; use PREMA_LOG_* (support/log.hpp)"},
    {"logging", "cerr", true, false,
     "direct stderr write; use PREMA_LOG_* (support/log.hpp)"},
};

/// Per-rule allowlist, matched against the path relative to the src root
/// (forward slashes).
bool allowed(std::string_view rule, std::string_view rel) {
  if (rule == "determinism") {
    // The real-threads backend is the wall-clock domain by definition; the
    // RNG wrapper is where seeding is implemented.
    return rel == "dmcs/thread_machine.hpp" || rel == "dmcs/thread_machine.cpp" ||
           rel == "support/rng.hpp";
  }
  if (rule == "randomness") {
    // The sanctioned RNG owners: the emulator core (one stream per machine),
    // the thread backend (per-worker streams), the fault subsystem (one
    // stream per link — the whole point of src/fault), the RNG wrapper
    // itself, and the partitioner's seeded coarsening.
    if (rel.size() >= 6 && rel.substr(0, 6) == "fault/") return true;
    return rel == "sim/engine.hpp" || rel == "dmcs/thread_machine.hpp" ||
           rel == "dmcs/thread_machine.cpp" || rel == "support/rng.hpp" ||
           rel == "partition/multilevel.cpp";
  }
  if (rule == "locking") {
    // The one place raw primitives may appear: the annotated wrappers.
    return rel == "support/thread_annotations.hpp";
  }
  if (rule == "logging") {
    // CLI entry points print by design; the logger and the assert macro are
    // the sanctioned stderr writers.
    if (rel.size() >= 9 && rel.substr(rel.size() - 9) == "_main.cpp") return true;
    return rel == "support/log.hpp" || rel == "support/log.cpp" ||
           rel == "support/assert.hpp";
  }
  return false;
}

void lint_content(const std::string& rel, std::string_view raw,
                  std::vector<Violation>& out) {
  const std::string code = strip_comments_and_literals(raw);
  for (const Rule& r : kRules) {
    if (allowed(r.name, rel)) continue;
    std::size_t from = 0;
    while (true) {
      const std::size_t pos =
          find_ident(code, r.needle, from, r.allow_scope_prefix, r.require_call);
      if (pos == std::string_view::npos) break;
      from = pos + 1;
      if (r.skip_if_ref) {
        std::size_t after = pos + std::string_view(r.needle).size();
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after]))) {
          ++after;
        }
        if (after < code.size() && code[after] == '&') continue;
      }
      const auto line = 1 + std::count(code.begin(),
                                       code.begin() + static_cast<std::ptrdiff_t>(pos),
                                       '\n');
      out.push_back({rel, static_cast<int>(line), r.name, r.needle, r.why});
    }
  }
}

int lint_tree(const fs::path& root) {
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "prema_lint: %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }
  std::vector<Violation> violations;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string rel = fs::relative(path, root).generic_string();
    lint_content(rel, ss.str(), violations);
  }
  for (const auto& v : violations) {
    std::fprintf(stderr, "%s:%d: [%s] `%s`: %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.needle.c_str(), v.why.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "prema_lint: %zu violation(s) in %zu file(s) scanned\n",
                 violations.size(), files.size());
    return 1;
  }
  std::printf("prema_lint: OK (%zu files scanned)\n", files.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test: every rule must fire on a seeded violation and stay silent on
// the idiomatic legal spelling of the same thing.
// ---------------------------------------------------------------------------

struct Snippet {
  const char* label;
  const char* rel;       ///< pretend path relative to src root
  const char* code;
  bool expect_violation;
};

constexpr Snippet kSnippets[] = {
    // Positives: each rule family catches its seeded violation.
    {"steady_clock in library code", "ilb/balancer.cpp",
     "auto t = std::chrono::steady_clock::now();", true},
    {"random_device in library code", "mol/mol.cpp",
     "std::random_device rd; auto s = rd();", true},
    {"bare rand() call", "sim/event_queue.cpp", "int r = rand();", true},
    {"bare time() call", "prema/runtime.cpp", "auto t = time(nullptr);", true},
    {"std::time() call", "prema/runtime.cpp", "auto t = std::time(nullptr);", true},
    {"owning Rng in library code", "ilb/policies/work_stealing.cpp",
     "util::Rng rng_{7};", true},
    {"Rng in a container outside src/fault", "mol/mol.cpp",
     "std::vector<util::Rng> streams_;", true},
    {"raw std::mutex", "ilb/scheduler.hpp", "std::mutex mu_;", true},
    {"raw lock_guard", "ilb/scheduler.cpp",
     "std::lock_guard<std::mutex> g(mu_);", true},
    {"raw condition_variable", "dmcs/node.hpp", "std::condition_variable cv_;", true},
    {"printf in library code", "mol/mol.cpp", "printf(\"%d\", x);", true},
    {"std::cout in library code", "trace/export.cpp", "std::cout << x;", true},
    {"fprintf in library code", "graph/graph.cpp",
     "std::fprintf(stderr, \"x\");", true},

    // Negatives: legal idioms that a naive substring scan would flag.
    {"steady_clock allowed in the thread backend", "dmcs/thread_machine.cpp",
     "using Clock = std::chrono::steady_clock;", false},
    {"raw mutex allowed in the wrapper header", "support/thread_annotations.hpp",
     "std::mutex mu_; std::condition_variable cv_;", false},
    {"fprintf allowed in CLI entry points", "trace/trace_check_main.cpp",
     "std::fprintf(stderr, \"usage\\n\");", false},
    {"fprintf allowed in the logger", "support/log.cpp",
     "std::vfprintf(stderr, fmt, args);", false},
    {"snprintf is formatting, not output", "trace/export.cpp",
     "std::snprintf(buf, sizeof buf, \"%g\", v);", false},
    {"transfer_time() is not ::time()", "sim/network.cpp",
     "double t = transfer_time(bytes);", false},
    {"member .time() is not ::time()", "sim/event_queue.cpp",
     "double t = ev.time();", false},
    {"steady_clock in a comment", "ilb/balancer.cpp",
     "// steady_clock would be wrong here\nint x = 0;", false},
    {"mutex in a string literal", "support/log.cpp",
     "const char* s = \"std::mutex is banned\";", false},
    {"util::Mutex wrapper is fine", "dmcs/thread_machine.hpp",
     "util::Mutex inbox_mutex_; util::LockGuard g(inbox_mutex_);", false},
    {"identifier containing a banned word", "ilb/scheduler.cpp",
     "int mutex_count = 0; double timeout = grand_total;", false},
    {"rng.hpp may seed from anywhere", "support/rng.hpp",
     "std::random_device rd;", false},
    {"borrowing util::Rng& is fine anywhere", "ilb/policies/work_stealing.cpp",
     "util::Rng& rng = ctx.rng();", false},
    {"fault subsystem owns its per-link streams", "fault/fault_plan.hpp",
     "std::vector<util::Rng> link_rng_;", false},
    {"sim engine owns the machine stream", "sim/engine.hpp",
     "util::Rng rng_;", false},
    {"partitioner seeds its own stream", "partition/multilevel.cpp",
     "util::Rng rng(opts.seed);", false},
};

int self_test() {
  int failures = 0;
  for (const Snippet& s : kSnippets) {
    std::vector<Violation> out;
    lint_content(s.rel, s.code, out);
    const bool fired = !out.empty();
    if (fired != s.expect_violation) {
      std::fprintf(stderr, "self-test FAIL: %s (expected %s, got %s)\n", s.label,
                   s.expect_violation ? "violation" : "clean",
                   fired ? "violation" : "clean");
      for (const auto& v : out) {
        std::fprintf(stderr, "  fired: [%s] `%s` at line %d\n", v.rule.c_str(),
                     v.needle.c_str(), v.line);
      }
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "prema_lint --self-test: %d failure(s) out of %zu cases\n",
                 failures, std::size(kSnippets));
    return 1;
  }
  std::printf("prema_lint --self-test: OK (%zu cases)\n", std::size(kSnippets));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string_view(argv[1]) == "--self-test") return self_test();
  if (argc != 2) {
    std::fprintf(stderr, "usage: prema_lint <src-root> | prema_lint --self-test\n");
    return 2;
  }
  return lint_tree(argv[1]);
}
