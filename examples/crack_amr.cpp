// Parallel adaptive mesh generation under PREMA — the paper's motivating
// application (§1): a crack advances through a structure; the subdomains
// around its tip suddenly need an order of magnitude more refinement, and
// nobody can predict where it goes next. Work stealing with preemptive
// message processing keeps the processors busy anyway.
//
// This example runs the full application (real advancing-front meshing
// inside every subdomain) on a 16-processor emulated machine and compares
// PREMA against no balancing.
//
// Run:  ./crack_amr
#include <cstdio>

#include "bench_support/mesh_app.hpp"

using namespace prema::bench;

int main() {
  MeshAppConfig cfg;
  cfg.nprocs = 16;
  cfg.grid = 8;       // 512 subdomains
  cfg.phases = 3;     // three crack steps

  std::printf("crack growth through %d^3 subdomains on %d emulated processors,"
              " %d phases\n\n",
              cfg.grid, cfg.nprocs, cfg.phases);
  for (const MeshSystem sys : {MeshSystem::kNoLB, MeshSystem::kPremaImplicit}) {
    const MeshAppReport r = run_mesh_app(sys, cfg);
    std::printf("%-32s\n", r.label.c_str());
    std::printf("  makespan          %8.2f emulated seconds\n", r.makespan);
    std::printf("  elements built    %lld tetrahedra over %lld refinements\n",
                static_cast<long long>(r.total_tets),
                static_cast<long long>(r.refinements));
    std::printf("  migrations        %llu subdomains moved\n",
                static_cast<unsigned long long>(r.migrations));
    std::printf("  runtime overhead  %.3f%% of computation\n\n", r.overhead_pct);
  }
  return 0;
}
