// Quickstart: the paper's Figure 2 — performing a task over the nodes of a
// tree — written against this library's PREMA API.
//
// The sequential version walks child pointers:
//
//     void tree_node_t::do_work() {
//       if (left)  left->do_work();
//       if (right) right->do_work();
//       ... do more work for the local node ...
//     }
//
// The PREMA version replaces local pointers with mobile pointers and direct
// calls with messages (the paper's ilb_message): each tree node is a mobile
// object the runtime may migrate, so the traversal is automatically load
// balanced — here by the Work Stealing policy, with preemptive (implicit)
// message processing.
//
// Run:  ./quickstart [--trace-out=trace.json]
//                    [--fault-profile=<name>] [--fault-seed=<n>]
//
// With --trace-out the run records an event trace and writes Chrome
// trace-event JSON you can open at https://ui.perfetto.dev, plus a text
// summary of the recorded counters on stdout.
//
// With --fault-profile the emulated network injects faults (message drops,
// duplication, reordering, latency spikes, payload corruption, node
// slowdowns — profiles: lossy1pct | burst-reorder | one-slow-node) and the
// runtime's reliable transport masks them: the traversal still visits every
// node exactly once and termination detection still fires.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dmcs/sim_machine.hpp"
#include "fault/fault_plan.hpp"
#include "prema/runtime.hpp"
#include "trace/export.hpp"

using namespace prema;

namespace {

/// A tree node as a mobile object: children are mobile pointers, not raw
/// pointers, so the node works no matter where the runtime moved it.
class TreeNode : public mol::MobileObject {
 public:
  static constexpr std::uint32_t kTypeId = 1;

  TreeNode() = default;
  TreeNode(mol::MobilePtr l, mol::MobilePtr r, double mflop)
      : left(l), right(r), work_mflop(mflop) {}

  [[nodiscard]] std::uint32_t type_id() const override { return kTypeId; }
  void serialize(util::ByteWriter& w) const override {
    w.put<mol::MobilePtr>(left);
    w.put<mol::MobilePtr>(right);
    w.put<double>(work_mflop);
  }
  static std::unique_ptr<mol::MobileObject> make(util::ByteReader& r) {
    auto n = std::make_unique<TreeNode>();
    n->left = r.get<mol::MobilePtr>();
    n->right = r.get<mol::MobilePtr>();
    n->work_mflop = r.get<double>();
    return n;
  }

  mol::MobilePtr left = mol::kNullMobilePtr;
  mol::MobilePtr right = mol::kNullMobilePtr;
  double work_mflop = 50.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string fault_profile = "none";
  std::uint64_t fault_seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--fault-profile=", 16) == 0) {
      fault_profile = argv[i] + 16;
      if (!fault::is_fault_profile(fault_profile)) {
        std::fprintf(stderr, "unknown fault profile: %s\n", fault_profile.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      fault_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out=<file>] [--fault-profile=<name>]"
                   " [--fault-seed=<n>]\n",
                   argv[0]);
      return 2;
    }
  }

  // An emulated 8-processor machine with preemptive (implicit) polling.
  sim::MachineConfig mcfg;
  mcfg.nprocs = 8;
  mcfg.mflops = 333.0;
  dmcs::PollingConfig pcfg;
  pcfg.mode = dmcs::PollingMode::kPreemptive;
  dmcs::SimMachine machine(mcfg, pcfg);
  if (fault_profile != "none") {
    machine.set_fault_plan(std::make_shared<fault::FaultPlan>(
        fault::make_fault_profile(fault_profile), fault_seed, mcfg.nprocs));
    std::printf("quickstart: fault profile %s (seed %llu), reliable transport on\n",
                fault_profile.c_str(),
                static_cast<unsigned long long>(fault_seed));
  }

  RuntimeConfig rcfg;
  rcfg.policy = "work_stealing";
  rcfg.trace.enabled = !trace_out.empty();
  Runtime rt(machine, rcfg);
  rt.object_types().add(TreeNode::kTypeId, TreeNode::make);

  int nodes_worked = 0;
  // Figure 2's do_work_handler: recurse into the children by message, then
  // do this node's own work.
  const auto do_work = rt.register_object_handler(
      "do_work", [&nodes_worked](Context& ctx, mol::MobileObject& obj,
                                 util::ByteReader&, const mol::Delivery& d) {
        auto& node = static_cast<TreeNode&>(obj);
        if (!node.left.is_null()) ctx.message(node.left, d.handler);
        if (!node.right.is_null()) ctx.message(node.right, d.handler);
        ctx.compute(node.work_mflop);  // ... do more work for the local node
        ++nodes_worked;
      });

  rt.set_main([do_work](Context& ctx) {
    if (ctx.rank() != 0) return;
    // Build a complete binary tree of depth 10, entirely on processor 0 —
    // a pathological initial distribution the balancer must fix.
    constexpr int kDepth = 10;
    constexpr int kCount = (1 << kDepth) - 1;
    std::vector<mol::MobilePtr> ptrs(kCount);
    for (int i = kCount - 1; i >= 0; --i) {
      const int l = 2 * i + 1, r = 2 * i + 2;
      ptrs[static_cast<std::size_t>(i)] = ctx.add_object(std::make_unique<TreeNode>(
          l < kCount ? ptrs[static_cast<std::size_t>(l)] : mol::kNullMobilePtr,
          r < kCount ? ptrs[static_cast<std::size_t>(r)] : mol::kNullMobilePtr,
          50.0));
    }
    ctx.message(ptrs[0], do_work);  // kick off the traversal at the root
  });

  const double makespan = rt.run();

  std::printf("quickstart: traversed %d tree nodes in %.2f emulated seconds\n",
              nodes_worked, makespan);
  std::printf("  termination detected: %s\n",
              rt.termination_detected() ? "yes" : "no");
  for (ProcId p = 0; p < machine.nprocs(); ++p) {
    std::printf("  proc %d: computation %6.2f s, %llu objects resident at end\n",
                p, machine.ledger(p).get(util::TimeCategory::kComputation),
                static_cast<unsigned long long>(rt.mol_at(p).local_count()));
  }

  if (const auto* rec = machine.tracer()) {
    if (!trace::write_chrome_trace_file(trace_out, *rec)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("  trace: %llu events (%llu dropped) -> %s "
                "(open at https://ui.perfetto.dev)\n",
                static_cast<unsigned long long>(rec->total_events()),
                static_cast<unsigned long long>(rec->total_dropped()),
                trace_out.c_str());
    std::vector<util::TimeLedger> ledgers;
    for (ProcId p = 0; p < machine.nprocs(); ++p) {
      ledgers.push_back(machine.ledger(p));
    }
    trace::write_summary(std::cout, *rec, ledgers);
  }
  return 0;
}
