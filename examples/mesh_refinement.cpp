// The mesh substrate on its own: generate a tetrahedral mesh of the unit
// cube with the advancing-front (Delaunay-wall) mesher, first uniformly,
// then adaptively refined around a crack tip, and print mesh statistics.
//
// Run:  ./mesh_refinement
#include <cstdio>

#include "mesh/advancing_front.hpp"

using namespace prema::mesh;

namespace {

void mesh_once(const char* label, const SizingField& sizing) {
  std::vector<Vec3> points;
  std::vector<Face> faces;
  box_surface({0, 0, 0}, {1, 1, 1}, 6, points, faces);
  const auto boundary_points = points.size();
  auto interior = interior_points({0, 0, 0}, {1, 1, 1}, sizing);
  points.insert(points.end(), interior.begin(), interior.end());

  AdvancingFront aft(std::move(points), std::move(faces));
  const AftStats stats = aft.run();
  const TetMesh& mesh = aft.mesh();

  std::printf("%s\n", label);
  std::printf("  points: %zu boundary + %zu interior\n", boundary_points,
              interior.size());
  std::printf("  tetrahedra: %lld (front %s)\n",
              static_cast<long long>(stats.tets_created),
              stats.completed ? "closed" : "NOT closed");
  std::printf("  volume: %.9f (box volume 1.0)\n", mesh.total_volume());
  std::printf("  worst element quality: %.4f\n\n", mesh.min_quality());
}

}  // namespace

int main() {
  UniformSizing uniform(0.12);
  mesh_once("uniform sizing h = 0.12", uniform);

  CrackTipSizing crack({0.35, 0.35, 0.35}, /*h_min=*/0.03, /*h_max=*/0.18,
                       /*radius=*/0.3);
  mesh_once("crack-tip sizing (h 0.03 near (0.35,0.35,0.35), 0.18 far)", crack);

  // Move the tip — the refined region follows it. This is the adaptivity
  // that makes the parallel version's load unpredictable.
  CrackTipSizing moved({0.75, 0.7, 0.6}, 0.03, 0.18, 0.3);
  mesh_once("crack-tip sizing after the tip moved to (0.75,0.7,0.6)", moved);
  return 0;
}
