// The ILB framework's policy plug-ins: the same imbalanced application run
// under every bundled balancing strategy just by naming it — the
// customization point the PREMA framework is designed around (paper §4).
//
// Run:  ./policy_tour
#include <cstdio>
#include <memory>

#include "dmcs/sim_machine.hpp"
#include "prema/runtime.hpp"

using namespace prema;

namespace {

class Job : public mol::MobileObject {
 public:
  explicit Job(double mflop = 0.0) : mflop_(mflop) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(util::ByteWriter& w) const override { w.put<double>(mflop_); }
  static std::unique_ptr<mol::MobileObject> make(util::ByteReader& r) {
    return std::make_unique<Job>(r.get<double>());
  }
  double mflop_;
};

double run_with_policy(const std::string& policy) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = 16;
  mcfg.mflops = 333.0;
  dmcs::PollingConfig pcfg;
  pcfg.mode = dmcs::PollingMode::kPreemptive;
  dmcs::SimMachine machine(mcfg, pcfg);

  RuntimeConfig rcfg;
  rcfg.policy = policy;  // <- the only line that changes per strategy
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Job::make);
  const auto work = rt.register_object_handler(
      "work", [](Context& ctx, mol::MobileObject& obj, util::ByteReader&,
                 const mol::Delivery&) {
        ctx.compute(static_cast<Job&>(obj).mflop_);
      });
  rt.set_main([work](Context& ctx) {
    // A hot quarter of the machine holds 4x-weight jobs.
    const double mflop = ctx.rank() < ctx.nprocs() / 4 ? 400.0 : 100.0;
    for (int i = 0; i < 100; ++i) {
      const auto job = ctx.add_object(std::make_unique<Job>(mflop));
      // Coordinate along x by home rank: the sfc policy cuts this line into
      // equal-load segments; scalar policies ignore it (no-op without
      // topology accounting).
      ctx.set_coords(job, {(ctx.rank() + (i + 0.5) / 100.0) /
                               static_cast<double>(ctx.nprocs()),
                           0.5, 0.5});
      ctx.message(job, work, {}, mflop / 100.0);
    }
  });
  return rt.run();
}

}  // namespace

int main() {
  std::printf("one imbalanced workload, every bundled balancing policy\n");
  std::printf("(16 emulated procs; a quarter of them start with 4x-weight jobs)\n\n");
  for (const char* policy : {"null", "work_stealing", "diffusion", "gradient",
                             "master", "multilist", "sfc", "cluster"}) {
    std::printf("  %-15s makespan %8.1f emulated seconds\n", policy,
                run_with_policy(policy));
  }
  std::printf(
      "\n(cluster follows object-to-object traffic; these jobs never message\n"
      " each other, so it correctly stays put and matches the null policy)\n");
  return 0;
}
